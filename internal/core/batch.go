package core

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/testbed"
	"repro/internal/vfs"
)

// Figure 3 quantifies iSCSI's meta-data update aggregation: a batch of N
// consecutive invocations of one operation, starting cold, and the
// amortized messages per operation. The paper sweeps N from 1 to 1024 for
// eight operations (Section 4.2).

// BatchOp is one Figure 3 operation: run invocation i of a batch.
type BatchOp struct {
	Name  string
	Setup func(tb *testbed.Testbed) error
	Run   func(tb *testbed.Testbed, i int) error
}

// BatchOps lists the paper's eight batched operations.
var BatchOps = []BatchOp{
	{
		Name: "create",
		Run:  func(tb *testbed.Testbed, i int) error { return touch(tb, fmt.Sprintf("/c%d", i)) },
	},
	{
		Name:  "link",
		Setup: func(tb *testbed.Testbed) error { return touch(tb, "/src") },
		Run: func(tb *testbed.Testbed, i int) error {
			return tb.Link("/src", fmt.Sprintf("/ln%d", i))
		},
	},
	{
		Name: "rename",
		Setup: func(tb *testbed.Testbed) error {
			return touch(tb, "/r0")
		},
		Run: func(tb *testbed.Testbed, i int) error {
			return tb.Rename(fmt.Sprintf("/r%d", i), fmt.Sprintf("/r%d", i+1))
		},
	},
	{
		Name:  "chmod",
		Setup: func(tb *testbed.Testbed) error { return touch(tb, "/ch") },
		Run: func(tb *testbed.Testbed, i int) error {
			return tb.Chmod("/ch", vfs.Mode(0o600+i%8))
		},
	},
	{
		Name:  "stat",
		Setup: func(tb *testbed.Testbed) error { return touch(tb, "/st") },
		Run: func(tb *testbed.Testbed, i int) error {
			_, err := tb.Stat("/st")
			return err
		},
	},
	{
		Name:  "access",
		Setup: func(tb *testbed.Testbed) error { return touch(tb, "/ac") },
		Run:   func(tb *testbed.Testbed, i int) error { return tb.Access("/ac") },
	},
	{
		Name: "mkdir",
		Run:  func(tb *testbed.Testbed, i int) error { return tb.Mkdir(fmt.Sprintf("/m%d", i)) },
	},
	{
		Name:  "write",
		Setup: func(tb *testbed.Testbed) error { return tb.WriteFile("/w", make([]byte, 4096)) },
		Run: func(tb *testbed.Testbed, i int) error {
			f, err := tb.Open("/w")
			if err != nil {
				return err
			}
			if _, err := tb.WriteFileAt(f, 0, []byte{byte(i)}); err != nil {
				return err
			}
			return tb.Close(f)
		},
	},
}

// BatchPoint is one Figure 3 sample: amortized messages per op at a batch
// size.
type BatchPoint struct {
	Batch     int
	PerOpMsgs float64
	TotalMsgs int64
}

// BatchSeries is the Figure 3 curve for one operation.
type BatchSeries struct {
	Op     string
	Points []BatchPoint
}

// RunFigure3 reproduces Figure 3 on the iSCSI stack (aggregation is a
// client-filesystem property; the stack argument defaults to iSCSI).
func RunFigure3(opts Options, batches []int) ([]BatchSeries, error) {
	if len(batches) == 0 {
		batches = []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
	}
	var out []BatchSeries
	for _, op := range BatchOps {
		s := BatchSeries{Op: op.Name}
		for _, n := range batches {
			cell := metrics.Tags{"op": op.Name, "batch": itoa(n)}
			tb, err := opts.newBed("figure3", ISCSI, cell)
			if err != nil {
				return nil, err
			}
			if op.Setup != nil {
				if err := op.Setup(tb); err != nil {
					return nil, fmt.Errorf("figure3 %s setup: %w", op.Name, err)
				}
			}
			if err := tb.ColdCache(); err != nil {
				return nil, err
			}
			beginCell(tb, nil)
			before := tb.Snap()
			for i := 0; i < n; i++ {
				if err := op.Run(tb, i); err != nil {
					return nil, fmt.Errorf("figure3 %s[%d]: %w", op.Name, i, err)
				}
			}
			if err := tb.Drain(); err != nil {
				return nil, err
			}
			total := tb.Since(before).Messages
			endCell(tb, nil, map[string]float64{
				"messages":    float64(total),
				"msgs_per_op": float64(total) / float64(n),
			})
			s.Points = append(s.Points, BatchPoint{
				Batch:     n,
				TotalMsgs: total,
				PerOpMsgs: float64(total) / float64(n),
			})
		}
		out = append(out, s)
	}
	return out, nil
}
