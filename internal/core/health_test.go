package core

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/testbed"
)

var updateHealth = flag.Bool("update-health", false, "rewrite the health detection golden")

// TestHealthCrashDetectionGolden is the PR's acceptance cell: the
// server-crash detection report on all four stacks must show a
// time-to-detect strictly inside (0, TTR), a post-recovery resolve,
// zero false positives — and the fault-free control cells must stay
// quiet. The rendered table is pinned under a golden (regenerate with
// go test ./internal/core -run HealthCrash -update-health).
func TestHealthCrashDetectionGolden(t *testing.T) {
	cfg := HealthConfig{
		Families:   []fault.Family{fault.ServerCrash},
		Transports: []testbed.Transport{testbed.TransportFluid},
		Seed:       5,
	}
	cells, err := RunHealth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(testbed.AllKinds)*2 { // a control + a crash cell per stack
		t.Fatalf("%d cells, want %d", len(cells), len(testbed.AllKinds)*2)
	}
	for _, c := range cells {
		name := string(c.Family) + "/" + c.Label()
		if c.Scrapes == 0 || c.GaugeEvents == 0 {
			t.Errorf("%s: monitor idle (%d scrapes, %d gauge events)", name, c.Scrapes, c.GaugeEvents)
		}
		if c.Control {
			if c.Fires != 0 || c.FalsePositives != 0 {
				t.Errorf("%s: control cell alerted (%d fires, %d fp)", name, c.Fires, c.FalsePositives)
			}
			continue
		}
		if c.Collapsed {
			t.Errorf("%s: collapsed", name)
			continue
		}
		if !c.Detected || c.TTD <= 0 || c.TTD >= c.TTR {
			t.Errorf("%s: TTD %v not inside (0, TTR %v)", name, c.TTD, c.TTR)
		}
		if !c.Resolved {
			t.Errorf("%s: alert never resolved", name)
		}
		if c.FalsePositives != 0 || c.FalseNegatives != 0 {
			t.Errorf("%s: fp=%d fn=%d", name, c.FalsePositives, c.FalseNegatives)
		}
	}

	var buf bytes.Buffer
	RenderHealth(&buf, cells)
	path := filepath.Join("testdata", "health_crash.golden")
	if *updateHealth {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update-health): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("detection table drifted from golden:\n--- got ---\n%s--- want ---\n%s"+
			"(regenerate with -update-health if the change is intended)", buf.Bytes(), want)
	}
}

// TestHealthSweepDeterministicStream reruns health cells on every stack
// under both wire models and demands byte-identical gauge streams and
// alert timelines — the property that makes a detection-latency number
// a regression signal instead of noise.
func TestHealthSweepDeterministicStream(t *testing.T) {
	stacks := testbed.AllKinds
	transports := []testbed.Transport{testbed.TransportFluid, testbed.TransportTCP}
	if testing.Short() {
		stacks = []Stack{NFSv3, ISCSI}
		transports = []testbed.Transport{testbed.TransportFluid}
	}
	for _, stack := range stacks {
		for _, tr := range transports {
			stack, tr := stack, tr
			t.Run(fmt.Sprintf("%s-%s", stack.Tag(), tr), func(t *testing.T) {
				run := func() []byte {
					var buf bytes.Buffer
					cfg := HealthConfig{
						Families:   []fault.Family{fault.ServerCrash},
						Stacks:     []Stack{stack},
						Transports: []testbed.Transport{tr},
						Seed:       9,
						Metrics:    metrics.NewRecorder(metrics.NewSink(&buf), metrics.Tags{"cmd": "health"}),
					}
					if _, err := RunHealth(cfg); err != nil {
						t.Fatal(err)
					}
					return buf.Bytes()
				}
				a, b := run(), run()
				if !bytes.Equal(a, b) {
					t.Fatalf("health telemetry not deterministic: %d vs %d bytes", len(a), len(b))
				}
				for _, needle := range []string{`"experiment":"health"`, `"subsys":"gauge"`,
					`"subsys":"alert"`, `"family":"control"`} {
					if !bytes.Contains(a, []byte(needle)) {
						t.Errorf("stream missing %s", needle)
					}
				}
			})
		}
	}
}

// TestHealthSweepAllFamilies (full mode only) sweeps every family on
// two representative stacks: disk failure must be caught by the
// degraded-array saturation objective (availability alone cannot see
// it), the link flap by the availability stall rule, and the client
// crash is the honest false negative — the witness client keeps the
// service-level SLOs green while the victim idles.
func TestHealthSweepAllFamilies(t *testing.T) {
	if testing.Short() {
		t.Skip("full family sweep in -short mode")
	}
	cfg := HealthConfig{
		Stacks:     []Stack{NFSv3, ISCSI},
		Transports: []testbed.Transport{testbed.TransportFluid},
		Seed:       5,
	}
	cells, err := RunHealth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byFam := map[fault.Family][]HealthCell{}
	for _, c := range cells {
		byFam[c.Family] = append(byFam[c.Family], c)
	}
	for _, f := range []fault.Family{fault.ServerCrash, fault.DiskFail, fault.LinkFlap} {
		for _, c := range byFam[f] {
			if !c.Detected || c.FalsePositives != 0 {
				t.Errorf("%s/%s: detected=%v fp=%d", f, c.Label(), c.Detected, c.FalsePositives)
			}
			if c.Detected && c.TTD >= c.TTR {
				t.Errorf("%s/%s: TTD %v did not beat TTR %v", f, c.Label(), c.TTD, c.TTR)
			}
		}
	}
	for _, c := range byFam[fault.ClientCrash] {
		if c.FalsePositives != 0 {
			t.Errorf("client-crash/%s: %d false positives", c.Label(), c.FalsePositives)
		}
	}
}
