package core

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/testbed"
)

// Figure 5 measures read and write message overheads against request size
// (128 bytes to 64 KB), cold and warm (Section 4.4). Cold reads start from
// empty caches; warm reads follow a full read of the file. Writes are
// measured cold, and — matching what a packet monitor sees before
// asynchronous write-back fires — counted to syscall return rather than to
// quiescence (the paper measured warm-cache write effects only via
// macro-benchmarks).

// SizePoint is one Figure 5 sample.
type SizePoint struct {
	Size     int
	Messages map[Stack]int64
}

// SizeSeries is one Figure 5 panel.
type SizeSeries struct {
	Panel  string // "cold-read", "warm-read", "cold-write"
	Points []SizePoint
}

// figure5Sizes returns the paper's request sizes: powers of two from 128
// bytes to 64 KB.
func figure5Sizes() []int {
	var out []int
	for s := 128; s <= 64<<10; s *= 2 {
		out = append(out, s)
	}
	return out
}

// RunFigure5 reproduces the three Figure 5 panels.
func RunFigure5(opts Options, sizes []int) ([]SizeSeries, error) {
	if len(sizes) == 0 {
		sizes = figure5Sizes()
	}
	panels := []string{"cold-read", "warm-read", "cold-write"}
	var out []SizeSeries
	for _, panel := range panels {
		s := SizeSeries{Panel: panel}
		for _, size := range sizes {
			pt := SizePoint{Size: size, Messages: map[Stack]int64{}}
			for _, stack := range testbed.AllKinds {
				n, err := ioSizeCount(opts, stack, panel, size)
				if err != nil {
					return nil, fmt.Errorf("figure5 %s %dB on %v: %w", panel, size, stack, err)
				}
				pt.Messages[stack] = n
			}
			s.Points = append(s.Points, pt)
		}
		out = append(out, s)
	}
	return out, nil
}

// ioSizeCount measures one Figure 5 cell.
func ioSizeCount(opts Options, stack Stack, panel string, size int) (msgs int64, err error) {
	tb, err := opts.newBed("figure5", stack,
		metrics.Tags{"panel": panel, "size": itoa(size)})
	if err != nil {
		return 0, err
	}
	// Close the telemetry cell on every successful exit (the measured
	// windows below each end with the message-count delta).
	defer func() {
		if err == nil {
			endCell(tb, nil, map[string]float64{"messages": float64(msgs)})
		}
	}()
	// The target file always holds 64 KB so every read size is in-file.
	if err := tb.WriteFile("/io.dat", make([]byte, 64<<10)); err != nil {
		return 0, err
	}
	if err := tb.ColdCache(); err != nil {
		return 0, err
	}
	switch panel {
	case "cold-read":
		beginCell(tb, nil)
		before := tb.Snap()
		f, err := tb.Open("/io.dat")
		if err != nil {
			return 0, err
		}
		buf := make([]byte, size)
		if _, err := tb.ReadFileAt(f, 0, buf); err != nil {
			return 0, err
		}
		if err := tb.Drain(); err != nil {
			return 0, err
		}
		return tb.Since(before).Messages, nil
	case "warm-read":
		// Prime: read the whole file, then sequential reads of increasing
		// size per the paper; we measure the target size after the prime.
		f, err := tb.Open("/io.dat")
		if err != nil {
			return 0, err
		}
		whole := make([]byte, 64<<10)
		if _, err := tb.ReadFileAt(f, 0, whole); err != nil {
			return 0, err
		}
		if err := tb.Drain(); err != nil {
			return 0, err
		}
		opts.fill()
		tb.Idle(opts.WarmGap)
		beginCell(tb, nil)
		before := tb.Snap()
		buf := make([]byte, size)
		if _, err := tb.ReadFileAt(f, 0, buf); err != nil {
			return 0, err
		}
		if err := tb.Drain(); err != nil {
			return 0, err
		}
		return tb.Since(before).Messages, nil
	case "cold-write":
		beginCell(tb, nil)
		before := tb.Snap()
		f, err := tb.Open("/io.dat")
		if err != nil {
			return 0, err
		}
		if _, err := tb.WriteFileAt(f, 0, make([]byte, size)); err != nil {
			return 0, err
		}
		// Counted to syscall return: asynchronous write-back traffic that
		// fires later is what makes v3/v4 flat in the paper's panel (c).
		return tb.Since(before).Messages, nil
	}
	return 0, fmt.Errorf("core: unknown figure 5 panel %q", panel)
}
