package core

import (
	"fmt"
	"io"
)

// Paper-shape conformance checking: each Check* function tests one of the
// paper's qualitative claims against regenerated data and reports
// pass/fail with the measured evidence. cmd tools and tests share these,
// so "the shape holds" is a checked property, not prose.

// ShapeCheck is one conformance verdict.
type ShapeCheck struct {
	Claim    string
	Pass     bool
	Evidence string
}

// CheckTable2Shapes validates the paper's three Table 2 observations on
// regenerated rows: iSCSI costs most cold for namespace-creating ops,
// counts grow with depth, and v4 exceeds v2/v3.
func CheckTable2Shapes(rows []SyscallRow) []ShapeCheck {
	var out []ShapeCheck
	find := func(op string) *SyscallRow {
		for i := range rows {
			if rows[i].Op == op {
				return &rows[i]
			}
		}
		return nil
	}
	if r := find("mkdir"); r != nil {
		out = append(out, ShapeCheck{
			Claim: "cold mkdir: iSCSI > NFS v3 (path resolution at the client)",
			Pass:  r.Depth0[ISCSI] > r.Depth0[NFSv3],
			Evidence: fmt.Sprintf("iSCSI=%d v3=%d at depth 0",
				r.Depth0[ISCSI], r.Depth0[NFSv3]),
		})
		out = append(out, ShapeCheck{
			Claim: "cold mkdir: counts grow with directory depth on every stack",
			Pass: r.Depth3[ISCSI] > r.Depth0[ISCSI] &&
				r.Depth3[NFSv3] > r.Depth0[NFSv3] &&
				r.Depth3[NFSv4] > r.Depth0[NFSv4],
			Evidence: fmt.Sprintf("d0->d3: iSCSI %d->%d, v3 %d->%d, v4 %d->%d",
				r.Depth0[ISCSI], r.Depth3[ISCSI],
				r.Depth0[NFSv3], r.Depth3[NFSv3],
				r.Depth0[NFSv4], r.Depth3[NFSv4]),
		})
	}
	var v4Higher, total int
	for _, r := range rows {
		total++
		if r.Depth3[NFSv4] >= r.Depth3[NFSv3] {
			v4Higher++
		}
	}
	out = append(out, ShapeCheck{
		Claim:    "cold: NFS v4 >= v3 on (nearly) every operation (ACCESS overhead)",
		Pass:     total > 0 && v4Higher*10 >= total*9,
		Evidence: fmt.Sprintf("%d of %d rows", v4Higher, total),
	})
	return out
}

// CheckTable3Shapes validates the warm-cache claims: iSCSI's update cost
// is a couple of journal transactions, never exceeding NFS by much, and
// read-only ops are free.
func CheckTable3Shapes(rows []SyscallRow) []ShapeCheck {
	var out []ShapeCheck
	updateOps := map[string]bool{"mkdir": true, "creat": true, "unlink": true, "rmdir": true}
	readOps := map[string]bool{"chdir": true, "stat": true, "access": true}
	var updMax, readMax int64
	for _, r := range rows {
		if updateOps[r.Op] && r.Depth3[ISCSI] > updMax {
			updMax = r.Depth3[ISCSI]
		}
		if readOps[r.Op] && r.Depth3[ISCSI] > readMax {
			readMax = r.Depth3[ISCSI]
		}
	}
	out = append(out, ShapeCheck{
		Claim:    "warm iSCSI updates cost ~2 msgs (journal body + commit record)",
		Pass:     updMax > 0 && updMax <= 3,
		Evidence: fmt.Sprintf("max update cost %d at depth 3", updMax),
	})
	out = append(out, ShapeCheck{
		Claim:    "warm iSCSI meta-data reads are free (client-resident filesystem)",
		Pass:     readMax == 0,
		Evidence: fmt.Sprintf("max read cost %d at depth 3", readMax),
	})
	return out
}

// CheckTable4Shapes validates the sequential/random I/O claims.
func CheckTable4Shapes(rows []Table4Row) []ShapeCheck {
	var out []ShapeCheck
	for _, r := range rows {
		switch r.Workload {
		case "Sequential writes":
			ratio := float64(r.NFS.Messages) / float64(maxI64(r.ISCSI.Messages, 1))
			out = append(out, ShapeCheck{
				Claim:    "seq writes: iSCSI coalesces (~29:1 message ratio)",
				Pass:     ratio > 10,
				Evidence: fmt.Sprintf("NFS %d vs iSCSI %d msgs (%.0f:1)", r.NFS.Messages, r.ISCSI.Messages, ratio),
			})
			out = append(out, ShapeCheck{
				Claim:    "seq writes: iSCSI completes much faster (async write-back)",
				Pass:     r.ISCSI.Elapsed*2 < r.NFS.Elapsed,
				Evidence: fmt.Sprintf("NFS %v vs iSCSI %v", r.NFS.Elapsed, r.ISCSI.Elapsed),
			})
		case "Sequential reads":
			ratio := float64(r.NFS.Messages) / float64(maxI64(r.ISCSI.Messages, 1))
			out = append(out, ShapeCheck{
				Claim:    "seq reads: comparable message counts",
				Pass:     ratio > 0.5 && ratio < 2,
				Evidence: fmt.Sprintf("NFS %d vs iSCSI %d msgs", r.NFS.Messages, r.ISCSI.Messages),
			})
		case "Random reads":
			out = append(out, ShapeCheck{
				Claim:    "random reads: NFS no faster than iSCSI",
				Pass:     r.NFS.Elapsed >= r.ISCSI.Elapsed*9/10,
				Evidence: fmt.Sprintf("NFS %v vs iSCSI %v", r.NFS.Elapsed, r.ISCSI.Elapsed),
			})
		}
	}
	return out
}

// CheckTable5Shapes validates PostMark's claims: a large iSCSI win and
// message counts growing faster (relative to pool size) on iSCSI.
func CheckTable5Shapes(rows []Table5Row) []ShapeCheck {
	var out []ShapeCheck
	for _, r := range rows {
		out = append(out, ShapeCheck{
			Claim: fmt.Sprintf("PostMark %d files: iSCSI wins decisively", r.Files),
			Pass:  r.ISCSI.Elapsed*3 < r.NFS.Elapsed && r.ISCSI.Messages*10 < r.NFS.Messages,
			Evidence: fmt.Sprintf("time %v vs %v, msgs %d vs %d",
				r.NFS.Elapsed, r.ISCSI.Elapsed, r.NFS.Messages, r.ISCSI.Messages),
		})
	}
	if len(rows) >= 2 {
		first, last := rows[0], rows[len(rows)-1]
		growN := float64(last.NFS.Messages) / float64(maxI64(first.NFS.Messages, 1))
		growI := float64(last.ISCSI.Messages) / float64(maxI64(first.ISCSI.Messages, 1))
		out = append(out, ShapeCheck{
			Claim:    "iSCSI message count grows faster with pool size (cache dilution)",
			Pass:     growI > growN,
			Evidence: fmt.Sprintf("NFS x%.1f vs iSCSI x%.1f across pool sizes", growN, growI),
		})
	}
	return out
}

// RenderChecks prints a conformance report and returns the failure count.
func RenderChecks(w io.Writer, title string, checks []ShapeCheck) int {
	fail := 0
	fmt.Fprintf(w, "%s\n", title)
	for _, c := range checks {
		mark := "PASS"
		if !c.Pass {
			mark = "FAIL"
			fail++
		}
		fmt.Fprintf(w, "  [%s] %s (%s)\n", mark, c.Claim, c.Evidence)
	}
	return fail
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
