package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/testbed"
)

// TestFaultSweepShape runs the full family set on two stacks and checks
// the sweep-level acceptance bar: every cell recovers, reports a
// positive TTR and degraded throughput below the fault-free rate, the
// cells come out in deterministic axis order, and the rendered table
// names every family.
func TestFaultSweepShape(t *testing.T) {
	cfg := FaultConfig{
		Stacks:     []Stack{NFSv3, ISCSI},
		Transports: []testbed.Transport{testbed.TransportFluid},
		Seed:       5,
	}
	cells, err := RunFault(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(fault.Families)*2 {
		t.Fatalf("%d cells, want %d", len(cells), len(fault.Families)*2)
	}
	for _, c := range cells {
		name := string(c.Family) + "/" + c.Label()
		if c.Collapsed {
			t.Errorf("%s: collapsed", name)
			continue
		}
		if c.TTR <= 0 {
			t.Errorf("%s: ttr=%v", name, c.TTR)
		}
		if c.DegradedRate >= c.PreRate {
			t.Errorf("%s: no degradation: pre=%.1f degraded=%.1f", name, c.PreRate, c.DegradedRate)
		}
		if c.Family == fault.DiskFail && c.RebuildBlocks == 0 {
			t.Errorf("%s: rebuild moved no blocks", name)
		}
	}

	var buf bytes.Buffer
	RenderFault(&buf, cells)
	out := buf.String()
	for _, f := range fault.Families {
		if !strings.Contains(out, string(f)) {
			t.Errorf("render omits family %s:\n%s", f, out)
		}
	}
}

// TestFaultSweepDeterministicStream reruns one cell configuration and
// demands byte-identical experiment=fault telemetry.
func TestFaultSweepDeterministicStream(t *testing.T) {
	run := func() []byte {
		var buf bytes.Buffer
		cfg := FaultConfig{
			Families:   []fault.Family{fault.ServerCrash, fault.LinkFlap},
			Stacks:     []Stack{ISCSI},
			Transports: []testbed.Transport{testbed.TransportTCP},
			Seed:       9,
			Metrics:    metrics.NewRecorder(metrics.NewSink(&buf), metrics.Tags{"cmd": "fault"}),
		}
		if _, err := RunFault(cfg); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("fault telemetry not deterministic: %d vs %d bytes", len(a), len(b))
	}
	if !bytes.Contains(a, []byte(`"experiment":"fault"`)) {
		t.Fatalf("stream missing experiment=fault tag")
	}
}
