package core

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/fault"
	"repro/internal/health"
	"repro/internal/metrics"
	"repro/internal/simnet"
	"repro/internal/testbed"
	"repro/internal/tracing"
)

// Health experiment: detection quality against fault ground truth. Each
// cell attaches a fresh health monitor to a fresh cluster, replays a
// seeded fault plan (internal/fault), and scores the monitor's alert
// timeline against the plan's inject/heal instants: time-to-detect,
// time-to-resolve, false positives and negatives. Every stack/transport
// variant also runs a fault-free control cell — the same plan timeline
// dry-run, so any alert that fires is a false positive by construction.
// It converts the fault axis from "measure recovery" into "measure
// whether an operator would have noticed".

// DefaultHealthCooldown extends each fault run past its last heal long
// enough for the slow burn window to drain and the resolve transition to
// land inside the cell (the fault sweep's own 2s default cuts that off).
const DefaultHealthCooldown = 4 * time.Second

// HealthConfig parameterizes the detection-quality sweep.
type HealthConfig struct {
	// Families restricts the fault families (default all four).
	Families []fault.Family
	// Stacks restricts the sweep (default all four).
	Stacks []Stack
	// Transports are the wire models swept (default fluid and TCP).
	Transports []testbed.Transport
	// Clients is the cluster size (default 2: a victim and a witness).
	Clients int
	// Warmup is the fault-free lead-in; Outage each inject-to-heal
	// distance; Flaps the link-flap cycle count (see fault.PlanConfig).
	Warmup, Outage time.Duration
	Flaps          int
	// Victim selects the crashed client / failed array member.
	Victim int
	// Conns is the iSCSI MC/S connection count under TCP (default 1).
	Conns int
	// WindowBytes caps each TCP connection's window (default 64 KB).
	WindowBytes int
	// DeviceBlocks sizes each volume in 4 KB blocks (default 16384).
	DeviceBlocks int64
	// Seed drives fault-instant jitter, loss and workload randomness.
	Seed int64
	// Interval is the gauge scrape period (default health.DefaultInterval).
	Interval time.Duration
	// Objectives is the SLO set each cell evaluates (default
	// health.DefaultObjectives).
	Objectives []health.Objective
	// Cooldown extends each run past the last heal (default
	// DefaultHealthCooldown).
	Cooldown time.Duration
	// Metrics, when non-nil, receives per-cell telemetry tagged with the
	// sweep axes as experiment=health (see docs/METRICS.md).
	Metrics *metrics.Recorder
	// Tracer, when non-nil, records per-op span trees for every cell.
	Tracer *tracing.Tracer
}

func (c *HealthConfig) fill() {
	if len(c.Families) == 0 {
		c.Families = append([]fault.Family(nil), fault.Families...)
	}
	if len(c.Stacks) == 0 {
		c.Stacks = testbed.AllKinds
	}
	if len(c.Transports) == 0 {
		c.Transports = []testbed.Transport{testbed.TransportFluid, testbed.TransportTCP}
	}
	if c.Clients <= 0 {
		c.Clients = 2
	}
	if c.Conns == 0 {
		c.Conns = 1
	}
	if c.DeviceBlocks == 0 {
		c.DeviceBlocks = 16384
	}
	if c.Cooldown <= 0 {
		c.Cooldown = DefaultHealthCooldown
	}
}

// HealthCell is one (family, stack, transport) detection measurement —
// or a fault-free control cell (Control set, Family "control").
type HealthCell struct {
	// Family is the injected fault family ("control" for the dry-run
	// control cell).
	Family fault.Family
	// Stack and Transport are the cluster variant.
	Stack     Stack
	Transport testbed.Transport
	// Control marks the fault-free dry-run cell.
	Control bool

	// Inject/Recovered/TTR are the fault's ground truth (zero on
	// control cells).
	Inject, Recovered, TTR time.Duration
	// Detected/TTD: some objective fired at or after the injection, and
	// how long after.
	Detected bool
	TTD      time.Duration
	// Resolved/TTResolve: a resolve followed the recovery, and how long
	// after.
	Resolved  bool
	TTResolve time.Duration
	// Fires / FalsePositives / FalseNegatives grade the alert timeline
	// (see health.Score).
	Fires, FalsePositives, FalseNegatives int
	// Scrapes and GaugeEvents size the monitor's work in the cell.
	Scrapes, GaugeEvents int64
	// Collapsed marks a cell whose service never recovered (scoring is
	// then detection-only).
	Collapsed bool
}

// Label names the variant the way the tables print it.
func (c HealthCell) Label() string {
	if c.Stack == ISCSI && c.Transport == testbed.TransportTCP {
		return fmt.Sprintf("%s/tcp", c.Stack)
	}
	return fmt.Sprintf("%s/%s", c.Stack, c.Transport)
}

// controlFamily tags the fault-free dry-run cells.
const controlFamily = fault.Family("control")

// RunHealth sweeps detection quality over {family x stack x transport}:
// for each stack/transport variant, one fault-free control cell first,
// then one cell per fault family. Cells come out in deterministic
// order; identical seeds give byte-identical gauge streams and alert
// timelines (test-enforced). Invalid pairs (iSCSI over UDP) are
// skipped.
func RunHealth(cfg HealthConfig) ([]HealthCell, error) {
	cfg.fill()
	var cells []HealthCell
	for _, stack := range cfg.Stacks {
		for _, tr := range cfg.Transports {
			if stack == ISCSI && tr == testbed.TransportUDP {
				continue
			}
			cell, err := runHealthCell(cfg, fault.ServerCrash, stack, tr, true)
			if err != nil {
				return nil, fmt.Errorf("health control %v(%v): %w", stack, tr, err)
			}
			cells = append(cells, cell)
			for _, f := range cfg.Families {
				cell, err := runHealthCell(cfg, f, stack, tr, false)
				if err != nil {
					return nil, fmt.Errorf("health %s/%v(%v): %w", f, stack, tr, err)
				}
				cells = append(cells, cell)
			}
		}
	}
	return cells, nil
}

// runHealthCell builds one cluster with its own monitor (alert state is
// per-cell), replays one fault plan — dry-run for the control — and
// scores the alert timeline against the plan's ground truth.
func runHealthCell(cfg HealthConfig, f fault.Family, stack Stack, tr testbed.Transport, control bool) (HealthCell, error) {
	family := f
	if control {
		family = controlFamily
	}
	axes := HealthCell{Family: family, Stack: stack, Transport: tr, Control: control}
	conns := 1
	if stack == ISCSI && tr == testbed.TransportTCP {
		conns = cfg.Conns
	}
	tags := metrics.Tags{
		"family":  string(family),
		"clients": itoa(cfg.Clients),
		"conns":   itoa(conns),
	}
	mon, err := health.New(health.Config{Interval: cfg.Interval, Objectives: cfg.Objectives})
	if err != nil {
		return HealthCell{}, err
	}
	cl, err := testbed.NewCluster(testbed.ClusterConfig{
		Kind:         stack,
		Clients:      cfg.Clients,
		DeviceBlocks: cfg.DeviceBlocks,
		Seed:         cfg.Seed,
		Transport:    tr,
		Conns:        conns,
		WindowBytes:  cfg.WindowBytes,
		Metrics:      cellRecorder(cfg.Metrics, "health", stack, tags),
		Tracer:       cfg.Tracer,
		Health:       mon,
	})
	if err != nil {
		if errors.Is(err, simnet.ErrTransportBroken) {
			axes.Collapsed = true
			return axes, nil
		}
		return HealthCell{}, err
	}
	plan, err := fault.NewPlan(f, fault.PlanConfig{
		Warmup: cfg.Warmup,
		Outage: cfg.Outage,
		Flaps:  cfg.Flaps,
		Victim: cfg.Victim,
		Seed:   cfg.Seed,
	})
	if err != nil {
		return HealthCell{}, err
	}

	beginClusterCell(cl, nil)
	res, err := fault.Run(cl, fault.Config{Plan: plan, Cooldown: cfg.Cooldown, DryRun: control})
	if err != nil {
		if errors.Is(err, simnet.ErrTransportBroken) {
			endClusterCell(cl, nil, map[string]float64{"collapsed": 1})
			axes.Collapsed = true
			return axes, nil
		}
		return HealthCell{}, err
	}

	cell := axes
	cell.Scrapes, cell.GaugeEvents = mon.Scrapes(), mon.GaugeEvents()
	var sc health.Score
	if control {
		sc = health.ScoreControl(mon.Transitions())
	} else {
		cell.Inject, cell.Recovered, cell.TTR = res.Inject, res.Recovered, res.TTR
		cell.Collapsed = res.Collapsed
		sc = health.ScoreTimeline(mon.Transitions(), res.Inject, res.Recovered)
	}
	cell.Detected, cell.TTD = sc.Detected, sc.TTD
	cell.Resolved, cell.TTResolve = sc.Resolved, sc.TTResolve
	cell.Fires, cell.FalsePositives, cell.FalseNegatives = sc.Fires, sc.FalsePositives, sc.FalseNegatives

	results := map[string]float64{
		"fires":           float64(cell.Fires),
		"false_positives": float64(cell.FalsePositives),
		"scrapes":         float64(cell.Scrapes),
		"gauge_events":    float64(cell.GaugeEvents),
	}
	if control {
		results["control"] = 1
	} else {
		results["detected"] = b2f(cell.Detected)
		results["false_negatives"] = float64(cell.FalseNegatives)
		if cell.Detected {
			results["ttd_ns"] = float64(cell.TTD)
		}
		if cell.Resolved {
			results["tt_resolve_ns"] = float64(cell.TTResolve)
		}
		if !cell.Collapsed {
			results["ttr_ns"] = float64(cell.TTR)
		} else {
			results["collapsed"] = 1
		}
	}
	endClusterCell(cl, nil, results)
	return cell, nil
}

// b2f converts a bool result to its event-stream value.
func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// RenderHealth prints the detection-quality table: one panel per fault
// family (control first), one row per stack/transport variant.
func RenderHealth(w io.Writer, cells []HealthCell) {
	var families []fault.Family
	seenF := map[fault.Family]bool{}
	var labels []string
	seenL := map[string]bool{}
	byCell := map[fault.Family]map[string]HealthCell{}
	for _, c := range cells {
		if !seenF[c.Family] {
			seenF[c.Family] = true
			families = append(families, c.Family)
			byCell[c.Family] = map[string]HealthCell{}
		}
		if l := c.Label(); !seenL[l] {
			seenL[l] = true
			labels = append(labels, l)
		}
		byCell[c.Family][c.Label()] = c
	}
	for _, f := range families {
		if f == controlFamily {
			fmt.Fprintf(w, "health: control (fault-free)\n")
			fmt.Fprintf(w, "%-16s %7s %7s %9s\n", "stack", "fires", "fp", "verdict")
			for _, l := range labels {
				c, ok := byCell[f][l]
				if !ok {
					continue
				}
				verdict := "quiet"
				if c.FalsePositives > 0 {
					verdict = "NOISY"
				}
				fmt.Fprintf(w, "%-16s %7d %7d %9s\n", l, c.Fires, c.FalsePositives, verdict)
			}
			fmt.Fprintln(w)
			continue
		}
		fmt.Fprintf(w, "health: %s\n", f)
		fmt.Fprintf(w, "%-16s %10s %10s %9s %10s %6s %4s %4s\n",
			"stack", "ttd", "ttr", "ttd/ttr", "resolve", "fires", "fp", "fn")
		for _, l := range labels {
			c, ok := byCell[f][l]
			if !ok {
				continue
			}
			ttd, ratio := "miss", "-"
			if c.Detected {
				ttd = c.TTD.Round(time.Millisecond).String()
				if c.TTR > 0 {
					ratio = fmt.Sprintf("%.2f", float64(c.TTD)/float64(c.TTR))
				}
			}
			ttr := "collapse"
			if !c.Collapsed {
				ttr = c.TTR.Round(time.Millisecond).String()
			}
			resolve := "-"
			if c.Resolved {
				resolve = c.TTResolve.Round(time.Millisecond).String()
			}
			fmt.Fprintf(w, "%-16s %10s %10s %9s %10s %6d %4d %4d\n",
				l, ttd, ttr, ratio, resolve, c.Fires, c.FalsePositives, c.FalseNegatives)
		}
		fmt.Fprintln(w)
	}
}
