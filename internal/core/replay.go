package core

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/replay"
	"repro/internal/testbed"
	"repro/internal/trace"
	"repro/internal/tracing"
)

// Replay experiment: the Section 7 workloads driven through the Section
// 5/6 performance machinery. The synthesized EECS-like and Campus-like
// traces (or an arbitrary JSONL op log) replay open-loop through a
// testbed.Cluster on every stack, under both the fluid wire model and
// virtual-time TCP, and the sweep reports per-op latency percentiles and
// aggregate replayed-op throughput per cell.

// ReplayProfiles lists the built-in trace profiles the sweep accepts.
var ReplayProfiles = []string{"eecs", "campus"}

// ReplayTransports are the wire models swept by default.
var ReplayTransports = []testbed.Transport{testbed.TransportFluid, testbed.TransportTCP}

// ReplayConfig parameterizes the replay sweep.
type ReplayConfig struct {
	// Profiles selects built-in traces ("eecs", "campus"; default both).
	// Ignored when Records is set.
	Profiles []string
	// Records replays an explicit op log (e.g. trace.ReadJSONL output)
	// instead of the built-in profiles; RecordsName labels its block.
	Records     []trace.Record
	RecordsName string
	// Stacks restricts the sweep (default all four).
	Stacks []Stack
	// Transports restricts the wire models (default fluid and TCP; UDP is
	// accepted for NFS stacks and skipped for iSCSI, which requires TCP).
	Transports []testbed.Transport
	// Clients is the cluster size; traced client ids fold onto it
	// (default 4).
	Clients int
	// MaxOps truncates each trace (default 2000; negative replays
	// everything — a full profile is ~1-2M ops, so unbounded replay is
	// an explicit choice, never a zero-value accident).
	MaxOps int
	// DirMod folds the trace's directory namespace (default 64).
	DirMod int
	// Conns is the iSCSI MC/S connection count under TCP (default 1).
	Conns int
	// WindowBytes caps each TCP connection's window (default 64 KB).
	WindowBytes int
	// DeviceBlocks sizes each client volume in 4 KB blocks (default
	// 16384; the shared NFS export is scaled by client count).
	DeviceBlocks int64
	// Seed for the cluster.
	Seed int64
	// Metrics, when non-nil, receives per-cell telemetry tagged with the
	// sweep axes (see docs/METRICS.md).
	Metrics *metrics.Recorder
	// Tracer, when non-nil, records per-op span trees for every cell
	// (see docs/TRACING.md).
	Tracer *tracing.Tracer
}

func (c *ReplayConfig) fill() {
	if len(c.Profiles) == 0 {
		c.Profiles = ReplayProfiles
	}
	if len(c.Stacks) == 0 {
		c.Stacks = testbed.AllKinds
	}
	if len(c.Transports) == 0 {
		c.Transports = ReplayTransports
	}
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.MaxOps == 0 {
		c.MaxOps = 2000
	}
	if c.DirMod == 0 {
		c.DirMod = 64
	}
	if c.Conns <= 0 {
		c.Conns = 1
	}
	if c.DeviceBlocks == 0 {
		c.DeviceBlocks = 16384
	}
}

// replayTrace resolves a profile name to its synthesized trace.
func replayTrace(name string) ([]trace.Record, error) {
	switch strings.ToLower(name) {
	case "eecs":
		return trace.Synthesize(trace.EECS()), nil
	case "campus":
		return trace.Synthesize(trace.Campus()), nil
	default:
		return nil, fmt.Errorf("unknown replay profile %q (have %s)",
			name, strings.Join(ReplayProfiles, ", "))
	}
}

// ReplayCell is one (trace, stack, transport) measurement.
type ReplayCell struct {
	Profile   string
	Stack     Stack
	Transport testbed.Transport
	Conns     int
	Clients   int

	// Ops replayed; Elapsed spans the replay window.
	Ops     int
	Elapsed time.Duration
	// Per-op latency percentiles (nearest-rank) and mean.
	P50, P90, P99, Mean time.Duration
	// OpsPerSec is aggregate replayed-op throughput.
	OpsPerSec float64
	// SlowestClientMean is the worst per-client mean latency (the
	// straggler view of the same window).
	SlowestClientMean time.Duration
}

// Label names the cell's variant the way the tables print it.
func (c ReplayCell) Label() string {
	if c.Stack == ISCSI && c.Conns > 1 {
		return fmt.Sprintf("%s/%s x%d", c.Stack, c.Transport, c.Conns)
	}
	return fmt.Sprintf("%s/%s", c.Stack, c.Transport)
}

// RunReplay sweeps every (trace, stack, transport) combination. Cells are
// emitted in deterministic order; identical seeds give identical cells.
func RunReplay(cfg ReplayConfig) ([]ReplayCell, error) {
	cfg.fill()
	type block struct {
		name string
		recs []trace.Record
	}
	var blocks []block
	if cfg.Records != nil {
		name := cfg.RecordsName
		if name == "" {
			name = "oplog"
		}
		blocks = append(blocks, block{name, cfg.Records})
	} else {
		for _, p := range cfg.Profiles {
			recs, err := replayTrace(p)
			if err != nil {
				return nil, err
			}
			blocks = append(blocks, block{p, recs})
		}
	}
	var cells []ReplayCell
	for _, b := range blocks {
		for _, stack := range cfg.Stacks {
			for _, tr := range cfg.Transports {
				if stack == ISCSI && tr == testbed.TransportUDP {
					continue // no UDP transport exists for iSCSI
				}
				cell, err := runReplayCell(cfg, b.name, b.recs, stack, tr)
				if err != nil {
					return nil, fmt.Errorf("replay %s/%v/%v: %w", b.name, stack, tr, err)
				}
				cells = append(cells, cell)
			}
		}
	}
	return cells, nil
}

// runReplayCell builds one cluster and replays one trace through it.
func runReplayCell(cfg ReplayConfig, name string, recs []trace.Record,
	stack Stack, tr testbed.Transport) (ReplayCell, error) {
	dev := cfg.DeviceBlocks
	if stack != ISCSI {
		dev *= int64(cfg.Clients) // one shared export
	}
	conns := 1
	if stack == ISCSI && tr == testbed.TransportTCP {
		conns = cfg.Conns
	}
	cl, err := testbed.NewCluster(testbed.ClusterConfig{
		Kind:         stack,
		Clients:      cfg.Clients,
		DeviceBlocks: dev,
		Seed:         cfg.Seed,
		Transport:    tr,
		Conns:        conns,
		WindowBytes:  cfg.WindowBytes,
		Metrics: cellRecorder(cfg.Metrics, "replay", stack,
			metrics.Tags{"profile": name, "conns": itoa(conns), "clients": itoa(cfg.Clients)}),
		Tracer: cfg.Tracer,
	})
	if err != nil {
		return ReplayCell{}, err
	}
	maxOps := cfg.MaxOps
	if maxOps < 0 {
		maxOps = 0 // replay.Options spells "everything" as 0
	}
	beginClusterCell(cl, nil)
	res, err := replay.Run(cl, recs, replay.Options{DirMod: cfg.DirMod, MaxOps: maxOps})
	if err != nil {
		return ReplayCell{}, err
	}
	if len(res.Ops) > 0 {
		lats := make([]time.Duration, len(res.Ops))
		for i, op := range res.Ops {
			lats[i] = op.Latency()
		}
		cl.Metrics().Emit(cl.Horizon(), metrics.SubsysHist, metrics.KindSample,
			nil, metrics.LatencyHistogram(lats), nil)
	}
	endClusterCell(cl, nil, map[string]float64{
		"ops":         float64(len(res.Ops)),
		"elapsed_ns":  float64(res.Elapsed),
		"p50_ns":      float64(res.P50),
		"p90_ns":      float64(res.P90),
		"p99_ns":      float64(res.P99),
		"mean_ns":     float64(res.Mean),
		"ops_per_sec": res.OpsPerSec,
	})
	cell := ReplayCell{
		Profile:   name,
		Stack:     stack,
		Transport: tr,
		Conns:     conns,
		Clients:   cfg.Clients,
		Ops:       len(res.Ops),
		Elapsed:   res.Elapsed,
		P50:       res.P50,
		P90:       res.P90,
		P99:       res.P99,
		Mean:      res.Mean,
		OpsPerSec: res.OpsPerSec,
	}
	for _, c := range res.PerClient {
		if c.Mean > cell.SlowestClientMean {
			cell.SlowestClientMean = c.Mean
		}
	}
	return cell, nil
}

// RenderReplay prints the sweep grouped by trace: one row per (stack,
// transport) variant with latency percentiles and throughput.
func RenderReplay(w io.Writer, cells []ReplayCell) {
	var profiles []string
	seen := map[string]bool{}
	for _, c := range cells {
		if !seen[c.Profile] {
			seen[c.Profile] = true
			profiles = append(profiles, c.Profile)
		}
	}
	for _, p := range profiles {
		var clients, ops int
		for _, c := range cells {
			if c.Profile == p {
				clients, ops = c.Clients, c.Ops
				break
			}
		}
		fmt.Fprintf(w, "Trace replay: %s (open-loop, %d clients, %d ops)\n", p, clients, ops)
		fmt.Fprintf(w, "%-18s %9s %9s %9s %9s %9s %10s\n",
			"variant", "p50", "p90", "p99", "mean", "slowest", "ops/s")
		for _, c := range cells {
			if c.Profile != p {
				continue
			}
			fmt.Fprintf(w, "%-18s %9s %9s %9s %9s %9s %10.1f\n",
				c.Label(),
				c.P50.Round(time.Microsecond).String(),
				c.P90.Round(time.Microsecond).String(),
				c.P99.Round(time.Microsecond).String(),
				c.Mean.Round(time.Microsecond).String(),
				c.SlowestClientMean.Round(time.Microsecond).String(),
				c.OpsPerSec)
		}
		fmt.Fprintln(w)
	}
}
