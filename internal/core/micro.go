package core

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/testbed"
)

// MicroOp defines one of the paper's Table 1 system calls as a
// cold/warm-measurable experiment. Setup creates whatever objects the call
// needs (before the cache is emptied); Cold is the cold-cache invocation;
// WarmPrime and Warm form the warm-cache pair — a priming call followed,
// after a gap, by a "similar though not identical" call, exactly the
// paper's protocol (Section 4.1 and its footnote).
type MicroOp struct {
	Name      string
	Setup     func(tb *testbed.Testbed, dir string) error
	Cold      func(tb *testbed.Testbed, dir string) error
	WarmPrime func(tb *testbed.Testbed, dir string) error
	Warm      func(tb *testbed.Testbed, dir string) error
}

// touch creates an empty file.
func touch(tb *testbed.Testbed, path string) error {
	f, err := tb.Create(path)
	if err != nil {
		return err
	}
	return tb.Close(f)
}

// MicroOps lists the paper's sixteen file and directory calls (Table 1;
// rename appears in Table 2 as a seventeenth row).
var MicroOps = []MicroOp{
	{
		Name:      "mkdir",
		Cold:      func(tb *testbed.Testbed, d string) error { return tb.Mkdir(join(d, "n0")) },
		WarmPrime: func(tb *testbed.Testbed, d string) error { return tb.Mkdir(join(d, "w1")) },
		Warm:      func(tb *testbed.Testbed, d string) error { return tb.Mkdir(join(d, "w2")) },
	},
	{
		Name: "chdir",
		Setup: func(tb *testbed.Testbed, d string) error {
			if err := tb.Mkdir(join(d, "t1")); err != nil {
				return err
			}
			return tb.Mkdir(join(d, "t2"))
		},
		Cold:      func(tb *testbed.Testbed, d string) error { return tb.Chdir(join(d, "t1")) },
		WarmPrime: func(tb *testbed.Testbed, d string) error { return tb.Chdir(join(d, "t1")) },
		Warm:      func(tb *testbed.Testbed, d string) error { return tb.Chdir(join(d, "t2")) },
	},
	{
		Name: "readdir",
		Setup: func(tb *testbed.Testbed, d string) error {
			if err := tb.Mkdir(join(d, "t1")); err != nil {
				return err
			}
			for i := 0; i < 3; i++ {
				if err := touch(tb, join(d, fmt.Sprintf("t1/e%d", i))); err != nil {
					return err
				}
			}
			return nil
		},
		Cold: func(tb *testbed.Testbed, d string) error {
			_, err := tb.ReadDir(join(d, "t1"))
			return err
		},
		WarmPrime: func(tb *testbed.Testbed, d string) error {
			_, err := tb.ReadDir(join(d, "t1"))
			return err
		},
		Warm: func(tb *testbed.Testbed, d string) error {
			_, err := tb.ReadDir(join(d, "t1"))
			return err
		},
	},
	{
		Name:      "symlink",
		Cold:      func(tb *testbed.Testbed, d string) error { return tb.Symlink("target", join(d, "s0")) },
		WarmPrime: func(tb *testbed.Testbed, d string) error { return tb.Symlink("target", join(d, "s1")) },
		Warm:      func(tb *testbed.Testbed, d string) error { return tb.Symlink("target", join(d, "s2")) },
	},
	{
		Name: "readlink",
		Setup: func(tb *testbed.Testbed, d string) error {
			return tb.Symlink("target", join(d, "l1"))
		},
		Cold: func(tb *testbed.Testbed, d string) error {
			_, err := tb.Readlink(join(d, "l1"))
			return err
		},
		WarmPrime: func(tb *testbed.Testbed, d string) error {
			_, err := tb.Readlink(join(d, "l1"))
			return err
		},
		Warm: func(tb *testbed.Testbed, d string) error {
			_, err := tb.Readlink(join(d, "l1"))
			return err
		},
	},
	{
		Name: "unlink",
		Setup: func(tb *testbed.Testbed, d string) error {
			for _, n := range []string{"u0", "u1", "u2"} {
				if err := touch(tb, join(d, n)); err != nil {
					return err
				}
			}
			return nil
		},
		Cold:      func(tb *testbed.Testbed, d string) error { return tb.Unlink(join(d, "u0")) },
		WarmPrime: func(tb *testbed.Testbed, d string) error { return tb.Unlink(join(d, "u1")) },
		Warm:      func(tb *testbed.Testbed, d string) error { return tb.Unlink(join(d, "u2")) },
	},
	{
		Name: "rmdir",
		Setup: func(tb *testbed.Testbed, d string) error {
			for _, n := range []string{"r0", "r1", "r2"} {
				if err := tb.Mkdir(join(d, n)); err != nil {
					return err
				}
			}
			return nil
		},
		Cold:      func(tb *testbed.Testbed, d string) error { return tb.Rmdir(join(d, "r0")) },
		WarmPrime: func(tb *testbed.Testbed, d string) error { return tb.Rmdir(join(d, "r1")) },
		Warm:      func(tb *testbed.Testbed, d string) error { return tb.Rmdir(join(d, "r2")) },
	},
	{
		Name:      "creat",
		Cold:      func(tb *testbed.Testbed, d string) error { return touch(tb, join(d, "c0")) },
		WarmPrime: func(tb *testbed.Testbed, d string) error { return touch(tb, join(d, "c1")) },
		Warm:      func(tb *testbed.Testbed, d string) error { return touch(tb, join(d, "c2")) },
	},
	{
		Name: "open",
		Setup: func(tb *testbed.Testbed, d string) error {
			return touch(tb, join(d, "o1"))
		},
		Cold: func(tb *testbed.Testbed, d string) error {
			f, err := tb.Open(join(d, "o1"))
			if err != nil {
				return err
			}
			return tb.Close(f)
		},
		WarmPrime: func(tb *testbed.Testbed, d string) error {
			f, err := tb.Open(join(d, "o1"))
			if err != nil {
				return err
			}
			return tb.Close(f)
		},
		Warm: func(tb *testbed.Testbed, d string) error {
			f, err := tb.Open(join(d, "o1"))
			if err != nil {
				return err
			}
			return tb.Close(f)
		},
	},
	{
		Name: "link",
		Setup: func(tb *testbed.Testbed, d string) error {
			return touch(tb, join(d, "src"))
		},
		Cold: func(tb *testbed.Testbed, d string) error {
			return tb.Link(join(d, "src"), join(d, "l0"))
		},
		WarmPrime: func(tb *testbed.Testbed, d string) error {
			return tb.Link(join(d, "src"), join(d, "la"))
		},
		Warm: func(tb *testbed.Testbed, d string) error {
			return tb.Link(join(d, "src"), join(d, "lb"))
		},
	},
	{
		Name: "rename",
		Setup: func(tb *testbed.Testbed, d string) error {
			for _, n := range []string{"m0", "m1", "m2"} {
				if err := touch(tb, join(d, n)); err != nil {
					return err
				}
			}
			return nil
		},
		Cold: func(tb *testbed.Testbed, d string) error {
			return tb.Rename(join(d, "m0"), join(d, "m0x"))
		},
		WarmPrime: func(tb *testbed.Testbed, d string) error {
			return tb.Rename(join(d, "m1"), join(d, "m1x"))
		},
		Warm: func(tb *testbed.Testbed, d string) error {
			return tb.Rename(join(d, "m2"), join(d, "m2x"))
		},
	},
	{
		Name: "trunc",
		Setup: func(tb *testbed.Testbed, d string) error {
			return tb.WriteFile(join(d, "tr"), make([]byte, 8192))
		},
		Cold: func(tb *testbed.Testbed, d string) error {
			return tb.Truncate(join(d, "tr"), 4096)
		},
		WarmPrime: func(tb *testbed.Testbed, d string) error {
			return tb.Truncate(join(d, "tr"), 2048)
		},
		Warm: func(tb *testbed.Testbed, d string) error {
			return tb.Truncate(join(d, "tr"), 1024)
		},
	},
	{
		Name: "chmod",
		Setup: func(tb *testbed.Testbed, d string) error {
			return touch(tb, join(d, "ch"))
		},
		Cold: func(tb *testbed.Testbed, d string) error {
			return tb.Chmod(join(d, "ch"), 0o640)
		},
		WarmPrime: func(tb *testbed.Testbed, d string) error {
			return tb.Chmod(join(d, "ch"), 0o600)
		},
		Warm: func(tb *testbed.Testbed, d string) error {
			return tb.Chmod(join(d, "ch"), 0o644)
		},
	},
	{
		Name: "chown",
		Setup: func(tb *testbed.Testbed, d string) error {
			return touch(tb, join(d, "cw"))
		},
		Cold: func(tb *testbed.Testbed, d string) error {
			return tb.Chown(join(d, "cw"), 10, 10)
		},
		WarmPrime: func(tb *testbed.Testbed, d string) error {
			return tb.Chown(join(d, "cw"), 11, 11)
		},
		Warm: func(tb *testbed.Testbed, d string) error {
			return tb.Chown(join(d, "cw"), 12, 12)
		},
	},
	{
		Name: "access",
		Setup: func(tb *testbed.Testbed, d string) error {
			return touch(tb, join(d, "ac"))
		},
		Cold:      func(tb *testbed.Testbed, d string) error { return tb.Access(join(d, "ac")) },
		WarmPrime: func(tb *testbed.Testbed, d string) error { return tb.Access(join(d, "ac")) },
		Warm:      func(tb *testbed.Testbed, d string) error { return tb.Access(join(d, "ac")) },
	},
	{
		Name: "stat",
		Setup: func(tb *testbed.Testbed, d string) error {
			return touch(tb, join(d, "stt"))
		},
		Cold: func(tb *testbed.Testbed, d string) error {
			_, err := tb.Stat(join(d, "stt"))
			return err
		},
		WarmPrime: func(tb *testbed.Testbed, d string) error {
			_, err := tb.Stat(join(d, "stt"))
			return err
		},
		Warm: func(tb *testbed.Testbed, d string) error {
			_, err := tb.Stat(join(d, "stt"))
			return err
		},
	},
	{
		Name: "utime",
		Setup: func(tb *testbed.Testbed, d string) error {
			return touch(tb, join(d, "ut"))
		},
		Cold:      func(tb *testbed.Testbed, d string) error { return tb.Utimes(join(d, "ut")) },
		WarmPrime: func(tb *testbed.Testbed, d string) error { return tb.Utimes(join(d, "ut")) },
		Warm:      func(tb *testbed.Testbed, d string) error { return tb.Utimes(join(d, "ut")) },
	},
}

// FindMicroOp looks an operation up by name.
func FindMicroOp(name string) (MicroOp, error) {
	for _, op := range MicroOps {
		if op.Name == name {
			return op, nil
		}
	}
	return MicroOp{}, fmt.Errorf("core: unknown micro op %q", name)
}

// MicroCount measures one (op, depth, stack, warm) cell: the number of
// protocol transactions from invocation to quiescence.
func MicroCount(opts Options, op MicroOp, depth int, stack Stack, warm bool) (int64, error) {
	mode := "cold"
	if warm {
		mode = "warm"
	}
	tb, err := opts.newBed("micro", stack,
		metrics.Tags{"op": op.Name, "depth": itoa(depth), "mode": mode})
	if err != nil {
		return 0, err
	}
	if err := buildChain(tb, depth); err != nil {
		return 0, err
	}
	dir := chainPath(depth)
	if op.Setup != nil {
		if err := op.Setup(tb, dir); err != nil {
			return 0, fmt.Errorf("%s setup: %w", op.Name, err)
		}
	}
	if err := tb.ColdCache(); err != nil {
		return 0, err
	}
	if warm {
		if err := op.WarmPrime(tb, dir); err != nil {
			return 0, fmt.Errorf("%s warm prime: %w", op.Name, err)
		}
		if err := tb.Drain(); err != nil {
			return 0, err
		}
		opts.fill()
		tb.Idle(opts.WarmGap)
	}
	beginCell(tb, nil)
	before := tb.Snap()
	run := op.Cold
	if warm {
		run = op.Warm
	}
	if err := run(tb, dir); err != nil {
		return 0, fmt.Errorf("%s run: %w", op.Name, err)
	}
	if err := tb.Drain(); err != nil {
		return 0, err
	}
	msgs := tb.Since(before).Messages
	endCell(tb, nil, map[string]float64{"messages": float64(msgs)})
	return msgs, nil
}

// SyscallRow is one row of Table 2 or Table 3: message counts for the four
// stacks at directory depths 0 and 3.
type SyscallRow struct {
	Op     string
	Depth0 map[Stack]int64
	Depth3 map[Stack]int64
}

// runSyscallTable produces Table 2 (warm=false) or Table 3 (warm=true).
func runSyscallTable(opts Options, warm bool) ([]SyscallRow, error) {
	var rows []SyscallRow
	for _, op := range MicroOps {
		row := SyscallRow{Op: op.Name, Depth0: map[Stack]int64{}, Depth3: map[Stack]int64{}}
		for _, stack := range testbed.AllKinds {
			for _, depth := range []int{0, 3} {
				n, err := MicroCount(opts, op, depth, stack, warm)
				if err != nil {
					return nil, fmt.Errorf("%s depth %d on %v: %w", op.Name, depth, stack, err)
				}
				if depth == 0 {
					row.Depth0[stack] = n
				} else {
					row.Depth3[stack] = n
				}
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RunTable2 reproduces Table 2: cold-cache network message overheads.
func RunTable2(opts Options) ([]SyscallRow, error) { return runSyscallTable(opts, false) }

// RunTable3 reproduces Table 3: warm-cache network message overheads.
func RunTable3(opts Options) ([]SyscallRow, error) { return runSyscallTable(opts, true) }

// DepthPoint is one Figure 4 sample.
type DepthPoint struct {
	Depth    int
	Messages map[Stack]int64
}

// DepthSeries is one Figure 4 panel: an operation in cold or warm mode.
type DepthSeries struct {
	Op     string
	Warm   bool
	Points []DepthPoint
}

// RunFigure4 reproduces Figure 4: message counts for mkdir, chdir and
// readdir as directory depth varies, cold and warm.
func RunFigure4(opts Options, depths []int) ([]DepthSeries, error) {
	if len(depths) == 0 {
		depths = []int{0, 2, 4, 6, 8, 10, 12, 14, 16}
	}
	var out []DepthSeries
	for _, name := range []string{"mkdir", "chdir", "readdir"} {
		op, err := FindMicroOp(name)
		if err != nil {
			return nil, err
		}
		for _, warm := range []bool{false, true} {
			s := DepthSeries{Op: name, Warm: warm}
			for _, d := range depths {
				pt := DepthPoint{Depth: d, Messages: map[Stack]int64{}}
				for _, stack := range testbed.AllKinds {
					n, err := MicroCount(opts, op, d, stack, warm)
					if err != nil {
						return nil, err
					}
					pt.Messages[stack] = n
				}
				s.Points = append(s.Points, pt)
			}
			out = append(out, s)
		}
	}
	return out, nil
}
