package core

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/testbed"
	"repro/internal/workload"
)

// Macro-benchmarks: Tables 5 through 10 (Section 5).

// MacroScale shrinks macro-benchmark parameters uniformly; 1.0 runs
// paper-faithful sizes, smaller values run proportionally lighter
// workloads for tests and quick benchmarks.
type MacroScale float64

func (s MacroScale) apply(v int) int {
	if s <= 0 || s >= 1 {
		return v
	}
	out := int(float64(v) * float64(s))
	if out < 1 {
		out = 1
	}
	return out
}

func (s MacroScale) applyI64(v int64) int64 {
	if s <= 0 || s >= 1 {
		return v
	}
	out := int64(float64(v) * float64(s))
	if out < 1 {
		out = 1
	}
	return out
}

// Table5Row is one PostMark pool size.
type Table5Row struct {
	Files int
	NFS   workload.Result
	ISCSI workload.Result
}

// RunTable5 reproduces Table 5: PostMark at 1,000 / 5,000 / 25,000 files,
// 100,000 transactions.
func RunTable5(opts Options, scale MacroScale) ([]Table5Row, error) {
	opts.fill()
	var rows []Table5Row
	for _, files := range []int{1000, 5000, 25000} {
		cfg := workload.DefaultPostMark(scale.apply(files))
		cfg.Transactions = scale.apply(100000)
		row := Table5Row{Files: cfg.Files}
		for _, stack := range []Stack{NFSv3, ISCSI} {
			tb, err := opts.newBed("table5", stack, metrics.Tags{"files": itoa(cfg.Files)})
			if err != nil {
				return nil, err
			}
			res, _, err := workload.PostMark(tb, cfg)
			if err != nil {
				return nil, fmt.Errorf("table5 %d files on %v: %w", files, stack, err)
			}
			if stack == NFSv3 {
				row.NFS = res
			} else {
				row.ISCSI = res
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// dbBed builds a testbed whose cache-to-database ratio mirrors the paper's
// (the 30 GB TPC-C and 1 GB TPC-H databases dwarfed the 512 MB client and
// 1 GB server).
func (o Options) dbBed(experiment string, k Stack, dbSize int64) (*testbed.Testbed, error) {
	o.fill()
	dbBlocks := int(dbSize / 4096)
	return testbed.New(testbed.Config{
		Kind:              k,
		DeviceBlocks:      o.DeviceBlocks,
		Seed:              o.Seed,
		ClientCacheBlocks: maxInt(dbBlocks/8, 512),
		ServerCacheBlocks: maxInt(dbBlocks/4, 1024),
		Metrics:           cellRecorder(o.Metrics, experiment, k, nil),
	})
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TPCRow is one database benchmark comparison. Throughputs are normalized
// to NFS v3 = 1.0, the way the paper reports unaudited runs.
type TPCRow struct {
	Benchmark  string
	NFS, ISCSI workload.Result
	// Normalized is iSCSI throughput / NFS throughput.
	Normalized float64
}

// RunTable6 reproduces Table 6 (TPC-C).
func RunTable6(opts Options, scale MacroScale) (TPCRow, error) {
	cfg := workload.DefaultTPCC()
	cfg.DBSize = scale.applyI64(cfg.DBSize)
	cfg.Transactions = scale.apply(cfg.Transactions)
	row := TPCRow{Benchmark: "TPC-C"}
	for _, stack := range []Stack{NFSv3, ISCSI} {
		tb, err := opts.dbBed("table6", stack, cfg.DBSize)
		if err != nil {
			return row, err
		}
		res, err := workload.TPCC(tb, cfg)
		if err != nil {
			return row, fmt.Errorf("table6 on %v: %w", stack, err)
		}
		if stack == NFSv3 {
			row.NFS = res
		} else {
			row.ISCSI = res
		}
	}
	row.Normalized = row.ISCSI.Throughput / row.NFS.Throughput
	return row, nil
}

// RunTable7 reproduces Table 7 (TPC-H).
func RunTable7(opts Options, scale MacroScale) (TPCRow, error) {
	cfg := workload.DefaultTPCH()
	cfg.DBSize = scale.applyI64(cfg.DBSize)
	cfg.Queries = scale.apply(cfg.Queries)
	if cfg.Queries < 2 {
		cfg.Queries = 2
	}
	row := TPCRow{Benchmark: "TPC-H"}
	for _, stack := range []Stack{NFSv3, ISCSI} {
		tb, err := opts.dbBed("table7", stack, cfg.DBSize)
		if err != nil {
			return row, err
		}
		res, err := workload.TPCH(tb, cfg)
		if err != nil {
			return row, fmt.Errorf("table7 on %v: %w", stack, err)
		}
		if stack == NFSv3 {
			row.NFS = res
		} else {
			row.ISCSI = res
		}
	}
	row.Normalized = row.ISCSI.Throughput / row.NFS.Throughput
	return row, nil
}

// Table8Row is one shell benchmark.
type Table8Row struct {
	Benchmark string
	NFS       workload.Result
	ISCSI     workload.Result
}

// RunTable8 reproduces Table 8: tar -xzf, ls -lR, kernel compile, rm -rf.
func RunTable8(opts Options, scale MacroScale) ([]Table8Row, error) {
	opts.fill()
	cfg := workload.DefaultKernel()
	cfg.Dirs = scale.apply(cfg.Dirs)
	cfg.FilesPerDir = scale.apply(cfg.FilesPerDir)
	names := []string{"tar -xzf", "ls -lR", "kernel compile", "rm -rf"}
	results := map[Stack][]workload.Result{}
	for _, stack := range []Stack{NFSv3, ISCSI} {
		tb, err := opts.newBed("table8", stack, nil)
		if err != nil {
			return nil, err
		}
		var rs []workload.Result
		r, err := workload.KernelUntar(tb, cfg)
		if err != nil {
			return nil, fmt.Errorf("table8 untar on %v: %w", stack, err)
		}
		rs = append(rs, r)
		if r, err = workload.KernelList(tb, cfg); err != nil {
			return nil, fmt.Errorf("table8 ls on %v: %w", stack, err)
		}
		rs = append(rs, r)
		if r, err = workload.KernelCompile(tb, cfg); err != nil {
			return nil, fmt.Errorf("table8 compile on %v: %w", stack, err)
		}
		rs = append(rs, r)
		if r, err = workload.KernelRemove(tb, cfg); err != nil {
			return nil, fmt.Errorf("table8 rm on %v: %w", stack, err)
		}
		rs = append(rs, r)
		results[stack] = rs
	}
	var rows []Table8Row
	for i, n := range names {
		rows = append(rows, Table8Row{
			Benchmark: n,
			NFS:       results[NFSv3][i],
			ISCSI:     results[ISCSI][i],
		})
	}
	return rows, nil
}

// CPURow is one Table 9/10 row: 95th-percentile utilizations.
type CPURow struct {
	Benchmark   string
	NFSServer   float64
	ISCSIServer float64
	NFSClient   float64
	ISCSIClient float64
}

// RunTable9And10 reproduces Tables 9 and 10: server and client CPU
// utilization percentiles for PostMark, TPC-C and TPC-H.
func RunTable9And10(opts Options, scale MacroScale) ([]CPURow, error) {
	opts.fill()
	var rows []CPURow

	// PostMark (1,000-file configuration, as the CPU tables report).
	pm := workload.DefaultPostMark(scale.apply(1000))
	pm.Transactions = scale.apply(100000)
	row := CPURow{Benchmark: "PostMark"}
	for _, stack := range []Stack{NFSv3, ISCSI} {
		tb, err := opts.newBed("table9and10", stack, nil)
		if err != nil {
			return nil, err
		}
		res, _, err := workload.PostMark(tb, pm)
		if err != nil {
			return nil, fmt.Errorf("cpu postmark on %v: %w", stack, err)
		}
		if stack == NFSv3 {
			row.NFSServer, row.NFSClient = res.ServerCPU, res.ClientCPU
		} else {
			row.ISCSIServer, row.ISCSIClient = res.ServerCPU, res.ClientCPU
		}
	}
	rows = append(rows, row)

	t6, err := RunTable6(opts, scale)
	if err != nil {
		return nil, err
	}
	rows = append(rows, CPURow{
		Benchmark:   "TPC-C",
		NFSServer:   t6.NFS.ServerCPU,
		ISCSIServer: t6.ISCSI.ServerCPU,
		NFSClient:   t6.NFS.ClientCPU,
		ISCSIClient: t6.ISCSI.ClientCPU,
	})

	t7, err := RunTable7(opts, scale)
	if err != nil {
		return nil, err
	}
	rows = append(rows, CPURow{
		Benchmark:   "TPC-H",
		NFSServer:   t7.NFS.ServerCPU,
		ISCSIServer: t7.ISCSI.ServerCPU,
		NFSClient:   t7.NFS.ClientCPU,
		ISCSIClient: t7.ISCSI.ClientCPU,
	})
	return rows, nil
}
