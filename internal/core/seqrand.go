package core

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/testbed"
	"repro/internal/workload"
)

// Table 4 and Figure 6: sequential/random reads and writes of a large file
// in 4 KB chunks, on the LAN (Table 4) and across a WAN latency sweep
// (Figure 6, the NISTNet experiment). The paper compares NFS v3 and iSCSI.

// Table4Row is one Table 4 row.
type Table4Row struct {
	Workload string
	NFS      workload.Result
	ISCSI    workload.Result
}

// RunTable4 reproduces Table 4. fileSize 0 selects the paper's 128 MB.
func RunTable4(opts Options, fileSize int64) ([]Table4Row, error) {
	opts.fill()
	cfg := workload.DefaultSeqRand()
	if fileSize > 0 {
		cfg.FileSize = fileSize
	}
	type runner struct {
		name string
		slug string
		fn   func(*testbed.Testbed, workload.SeqRandConfig) (workload.Result, error)
	}
	runners := []runner{
		{"Sequential reads", "seq-read", workload.SequentialRead},
		{"Random reads", "rand-read", workload.RandomRead},
		{"Sequential writes", "seq-write", workload.SequentialWrite},
		{"Random writes", "rand-write", workload.RandomWrite},
	}
	var rows []Table4Row
	for _, r := range runners {
		row := Table4Row{Workload: r.name}
		for _, stack := range []Stack{NFSv3, ISCSI} {
			tb, err := opts.newBed("table4", stack, metrics.Tags{"workload": r.slug})
			if err != nil {
				return nil, err
			}
			res, err := r.fn(tb, cfg)
			if err != nil {
				return nil, fmt.Errorf("table4 %s on %v: %w", r.name, stack, err)
			}
			if stack == NFSv3 {
				row.NFS = res
			} else {
				row.ISCSI = res
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// LatencyPoint is one Figure 6 sample.
type LatencyPoint struct {
	RTT     time.Duration
	Seconds map[Stack]map[string]float64 // stack -> workload -> completion s
}

// RunFigure6 reproduces Figure 6: completion time for sequential and
// random reads and writes as the round-trip latency sweeps 10..90 ms.
// fileSize 0 selects the paper's 128 MB (slow; benchmarks shrink it).
func RunFigure6(opts Options, fileSize int64, rtts []time.Duration) ([]LatencyPoint, error) {
	opts.fill()
	if len(rtts) == 0 {
		for ms := 10; ms <= 90; ms += 20 {
			rtts = append(rtts, time.Duration(ms)*time.Millisecond)
		}
	}
	cfg := workload.DefaultSeqRand()
	if fileSize > 0 {
		cfg.FileSize = fileSize
	}
	type runner struct {
		name string
		fn   func(*testbed.Testbed, workload.SeqRandConfig) (workload.Result, error)
	}
	runners := []runner{
		{"seq-read", workload.SequentialRead},
		{"rand-read", workload.RandomRead},
		{"seq-write", workload.SequentialWrite},
		{"rand-write", workload.RandomWrite},
	}
	var out []LatencyPoint
	for _, rtt := range rtts {
		pt := LatencyPoint{RTT: rtt, Seconds: map[Stack]map[string]float64{}}
		for _, stack := range []Stack{NFSv3, ISCSI} {
			pt.Seconds[stack] = map[string]float64{}
			for _, r := range runners {
				tb, err := opts.newBed("figure6", stack,
					metrics.Tags{"workload": r.name, "rtt": durTag(rtt)})
				if err != nil {
					return nil, err
				}
				tb.SetRTT(rtt)
				res, err := r.fn(tb, cfg)
				if err != nil {
					return nil, fmt.Errorf("figure6 %s rtt=%v on %v: %w", r.name, rtt, stack, err)
				}
				pt.Seconds[stack][r.name] = res.Elapsed.Seconds()
			}
		}
		out = append(out, pt)
	}
	return out, nil
}
