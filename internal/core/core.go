// Package core is the comparison framework that reproduces every table and
// figure in the paper's evaluation (Sections 4 and 5): it builds testbeds,
// runs the micro- and macro-benchmarks on each protocol stack, counts
// protocol transactions over the paper's measurement windows, and renders
// the results in the papers' table/figure layouts.
//
// Experiment index (see DESIGN.md for the full mapping):
//
//	Table 2/3   — RunTable2 / RunTable3 (cold/warm syscall message counts)
//	Figure 3    — RunFigure3 (iSCSI meta-data update aggregation)
//	Figure 4    — RunFigure4 (directory-depth sensitivity)
//	Figure 5    — RunFigure5 (read/write size sensitivity)
//	Table 4     — RunTable4 (128 MB sequential/random I/O)
//	Figure 6    — RunFigure6 (WAN latency sweep)
//	Table 5     — RunTable5 (PostMark)
//	Table 6/7   — RunTable6 / RunTable7 (TPC-C / TPC-H)
//	Table 8     — RunTable8 (tar/ls/compile/rm)
//	Table 9/10  — RunTable9And10 (server/client CPU utilization)
package core

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/testbed"
)

// Stack identifies one protocol stack column, in the paper's order.
type Stack = testbed.Kind

// Stacks in table order.
const (
	NFSv2 = testbed.NFSv2
	NFSv3 = testbed.NFSv3
	NFSv4 = testbed.NFSv4
	ISCSI = testbed.ISCSI
)

// Options configures experiment scale. Zero values select paper-faithful
// parameters; tests and benchmarks shrink them for speed.
type Options struct {
	// DeviceBlocks sizes the volume (default 524288 = 2 GB).
	DeviceBlocks int64
	// WarmGap is the idle time between the priming and measured
	// invocation of a warm-cache pair. It must exceed the client
	// attribute-cache timeout (3 s) and the journal commit interval
	// (5 s), as wall-clock time did between the paper's manual runs.
	WarmGap time.Duration
	// Seed for workload randomness.
	Seed int64
	// LossRate injects frame loss on the testbed link, so the WAN sweeps
	// (Figure 6 and cmd/latency) can model lossy long-haul paths.
	LossRate float64
	// Metrics, when non-nil, receives telemetry from every experiment
	// run with these Options: each cell's testbed streams tagged counter
	// samples and result points (see docs/METRICS.md).
	Metrics *metrics.Recorder
}

func (o *Options) fill() {
	if o.DeviceBlocks == 0 {
		o.DeviceBlocks = 524288
	}
	if o.WarmGap == 0 {
		o.WarmGap = 6 * time.Second
	}
}

// newBed builds a testbed for one stack, instrumented as one telemetry
// cell: its events carry {experiment, stack} plus the extra axis tags.
func (o Options) newBed(experiment string, k Stack, extra metrics.Tags) (*testbed.Testbed, error) {
	o.fill()
	return testbed.New(testbed.Config{
		Kind:         k,
		DeviceBlocks: o.DeviceBlocks,
		Seed:         o.Seed,
		LossRate:     o.LossRate,
		Metrics:      cellRecorder(o.Metrics, experiment, k, extra),
	})
}

// chainPath returns the directory-chain path for a given depth: depth 0 is
// "/", depth 3 is "/d1/d2/d3" (the paper's /d1/d2/.../dn convention).
func chainPath(depth int) string {
	p := ""
	for i := 1; i <= depth; i++ {
		p += fmt.Sprintf("/d%d", i)
	}
	if p == "" {
		p = "/"
	}
	return p
}

// buildChain creates the directory chain on a testbed.
func buildChain(tb *testbed.Testbed, depth int) error {
	p := ""
	for i := 1; i <= depth; i++ {
		p += fmt.Sprintf("/d%d", i)
		if err := tb.Mkdir(p); err != nil {
			return err
		}
	}
	return nil
}

// join concatenates a chain path and a name.
func join(dir, name string) string {
	if dir == "/" {
		return "/" + name
	}
	return dir + "/" + name
}
