package core

import (
	"bytes"
	"testing"
	"time"
)

// tinyTransport keeps per-cell work small enough for unit tests.
func tinyTransport() TransportConfig {
	return TransportConfig{
		FileSize:     1 << 20,
		DeviceBlocks: 8192,
		Seed:         42,
	}
}

// findCell locates one cell by its coordinates.
func findCell(t *testing.T, cells []TransportCell, stack Stack, conns int,
	tr string, wl string, rtt time.Duration, loss float64) TransportCell {
	t.Helper()
	for _, c := range cells {
		if c.Stack == stack && c.Conns == conns && c.Transport.String() == tr &&
			c.Workload == wl && c.RTT == rtt && c.Loss == loss {
			return c
		}
	}
	t.Fatalf("no cell %v/%s x%d %s rtt=%v loss=%g", stack, tr, conns, wl, rtt, loss)
	return TransportCell{}
}

// TestTransportKumarConnScaling reproduces the qualitative Kumar et al.
// result: on a long fat pipe, iSCSI sequential-read throughput grows with
// the MC/S connection count until the pipe saturates.
func TestTransportKumarConnScaling(t *testing.T) {
	cfg := tinyTransport()
	cfg.Stacks = []Stack{ISCSI}
	cfg.Workloads = []string{"seq-read"}
	cfg.RTTs = []time.Duration{40 * time.Millisecond}
	cfg.LossRates = []float64{0}
	cfg.Conns = []int{1, 4, 8}
	cells, err := RunTransport(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rtt := cfg.RTTs[0]
	one := findCell(t, cells, ISCSI, 1, "tcp", "seq-read", rtt, 0)
	four := findCell(t, cells, ISCSI, 4, "tcp", "seq-read", rtt, 0)
	eight := findCell(t, cells, ISCSI, 8, "tcp", "seq-read", rtt, 0)
	if four.BytesPerSec <= one.BytesPerSec*1.2 {
		t.Fatalf("MC/S no speedup at 40 ms RTT: 1 conn %.2f MB/s, 4 conns %.2f MB/s",
			one.BytesPerSec/1e6, four.BytesPerSec/1e6)
	}
	// Saturation: doubling again buys much less than the first 4x did.
	firstGain := four.BytesPerSec / one.BytesPerSec
	secondGain := eight.BytesPerSec / four.BytesPerSec
	if secondGain >= firstGain {
		t.Fatalf("no saturation: 1->4 conns x%.2f, 4->8 conns x%.2f", firstGain, secondGain)
	}
}

// TestTransportUDPDegradesFasterThanTCP checks the loss story: as frame
// loss rises, NFS-over-UDP suffers fragmentation amplification (one lost
// MTU fragment kills a whole 8 KB datagram) plus exponentially backed-off
// RPC-timer recovery, and falls behind NFS-over-TCP's in-stream recovery.
func TestTransportUDPDegradesFasterThanTCP(t *testing.T) {
	cfg := tinyTransport()
	cfg.Stacks = []Stack{NFSv3}
	cfg.Workloads = []string{"seq-read"}
	cfg.RTTs = []time.Duration{time.Millisecond}
	cfg.LossRates = []float64{0, 0.05}
	cells, err := RunTransport(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rtt := cfg.RTTs[0]
	udpClean := findCell(t, cells, NFSv3, 1, "udp", "seq-read", rtt, 0)
	udpLossy := findCell(t, cells, NFSv3, 1, "udp", "seq-read", rtt, 0.05)
	tcpClean := findCell(t, cells, NFSv3, 1, "tcp", "seq-read", rtt, 0)
	tcpLossy := findCell(t, cells, NFSv3, 1, "tcp", "seq-read", rtt, 0.05)

	udpDeg := float64(udpLossy.Elapsed) / float64(udpClean.Elapsed)
	tcpDeg := float64(tcpLossy.Elapsed) / float64(tcpClean.Elapsed)
	if udpDeg <= tcpDeg {
		t.Fatalf("UDP degraded x%.2f, TCP x%.2f: UDP should suffer more from loss", udpDeg, tcpDeg)
	}
	if udpLossy.RPCRetrans == 0 {
		t.Fatal("lossy UDP run recorded no RPC retransmissions")
	}
	if tcpLossy.RPCRetrans != 0 {
		t.Fatalf("TCP run retransmitted %d times at RPC level", tcpLossy.RPCRetrans)
	}
	if tcpLossy.TCPRetrans == 0 {
		t.Fatal("lossy TCP run recorded no TCP retransmissions")
	}
}

// TestTransportWindowKnob: a larger per-connection window moves a
// window-limited single-connection flow faster at WAN latency.
func TestTransportWindowKnob(t *testing.T) {
	cfg := tinyTransport()
	cfg.Stacks = []Stack{ISCSI}
	cfg.Workloads = []string{"seq-read"}
	cfg.RTTs = []time.Duration{40 * time.Millisecond}
	cfg.LossRates = []float64{0}
	cfg.Conns = []int{1}
	cfg.Windows = []int{16 << 10, 256 << 10}
	cells, err := RunTransport(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var small, big TransportCell
	for _, c := range cells {
		switch c.Window {
		case 16 << 10:
			small = c
		case 256 << 10:
			big = c
		}
	}
	if big.BytesPerSec <= small.BytesPerSec {
		t.Fatalf("window knob inert: 16K %.2f MB/s vs 256K %.2f MB/s",
			small.BytesPerSec/1e6, big.BytesPerSec/1e6)
	}
}

// TestTransportDeterministicRender: identical seeds give byte-identical
// rendered output.
func TestTransportDeterministicRender(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	cfg := tinyTransport()
	cfg.RTTs = []time.Duration{10 * time.Millisecond}
	cfg.LossRates = []float64{0, 0.02}
	cfg.Conns = []int{1, 2}
	cfg.Workloads = []string{"seq-read"}
	run := func() string {
		cells, err := RunTransport(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		RenderTransport(&b, cells)
		return b.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("non-deterministic render:\n%s\nvs\n%s", a, b)
	}
	if a == "" {
		t.Fatal("empty render")
	}
}
