package core

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/testbed"
	"repro/internal/workload"
)

// Ablations isolate the design choices behind the paper's results: the
// journal commit interval (update aggregation window), the synchronous
// meta-data export mode (durability vs. performance), the client's
// async-write pool bound (pseudo-synchronous degeneration), and access
// time maintenance. Each returns the measured effect so DESIGN.md's
// causal claims are checkable, not narrative.

// AblationResult is one knob setting's measurement.
type AblationResult struct {
	Setting  string
	Elapsed  time.Duration
	Messages int64
}

// AblateCommitInterval runs a burst of meta-data updates on iSCSI under
// different journal commit intervals. Shorter intervals mean more commits
// per burst: less aggregation, more messages — quantifying the mechanism
// behind Figure 3 and Table 3.
func AblateCommitInterval(opts Options, intervals []time.Duration, ops int) ([]AblationResult, error) {
	opts.fill()
	if len(intervals) == 0 {
		intervals = []time.Duration{100 * time.Millisecond, time.Second, 5 * time.Second, 30 * time.Second}
	}
	if ops <= 0 {
		ops = 200
	}
	var out []AblationResult
	for _, iv := range intervals {
		tb, err := testbed.New(testbed.Config{
			Kind:           ISCSI,
			DeviceBlocks:   opts.DeviceBlocks,
			CommitInterval: iv,
			Seed:           opts.Seed,
			Metrics: cellRecorder(opts.Metrics, "ablate", ISCSI,
				metrics.Tags{"knob": "commit-interval", "setting": durTag(iv)}),
		})
		if err != nil {
			return nil, err
		}
		beginCell(tb, nil)
		before := tb.Snap()
		for i := 0; i < ops; i++ {
			if err := tb.Mkdir(fmt.Sprintf("/ci%d", i)); err != nil {
				return nil, err
			}
			// Ops spread in time so interval-driven commits can fire.
			tb.Idle(50 * time.Millisecond)
		}
		if err := tb.Drain(); err != nil {
			return nil, err
		}
		d := tb.Since(before)
		endCell(tb, nil, map[string]float64{
			"elapsed_ns": float64(d.Elapsed),
			"messages":   float64(d.Messages),
		})
		out = append(out, AblationResult{
			Setting:  fmt.Sprintf("commit=%v", iv),
			Elapsed:  d.Elapsed,
			Messages: d.Messages,
		})
	}
	return out, nil
}

// AblateSyncExport compares the era's async Linux export against the
// spec-compliant synchronous export on a meta-data burst over NFS v3: the
// durability the paper discusses in Section 2.3, priced.
func AblateSyncExport(opts Options, ops int) (async, sync AblationResult, err error) {
	opts.fill()
	if ops <= 0 {
		ops = 200
	}
	run := func(syncMode bool) (AblationResult, error) {
		setting := "async-export"
		if syncMode {
			setting = "sync-export"
		}
		tb, err := testbed.New(testbed.Config{
			Kind:         NFSv3,
			DeviceBlocks: opts.DeviceBlocks,
			Seed:         opts.Seed,
			Metrics: cellRecorder(opts.Metrics, "ablate", NFSv3,
				metrics.Tags{"knob": "export-durability", "setting": setting}),
		})
		if err != nil {
			return AblationResult{}, err
		}
		tb.NFSServer.SyncMetadataUpdates = syncMode
		beginCell(tb, nil)
		before := tb.Snap()
		for i := 0; i < ops; i++ {
			if err := tb.Mkdir(fmt.Sprintf("/se%d", i)); err != nil {
				return AblationResult{}, err
			}
		}
		if err := tb.Drain(); err != nil {
			return AblationResult{}, err
		}
		d := tb.Since(before)
		endCell(tb, nil, map[string]float64{
			"elapsed_ns": float64(d.Elapsed),
			"messages":   float64(d.Messages),
		})
		return AblationResult{Setting: setting, Elapsed: d.Elapsed, Messages: d.Messages}, nil
	}
	if async, err = run(false); err != nil {
		return
	}
	sync, err = run(true)
	return
}

// AblateWritePool sweeps the NFS client's async-write pool bound on a
// sequential write, quantifying Section 4.5's pseudo-synchronous
// degeneration: small pools stall the writer early and often.
func AblateWritePool(opts Options, bounds []int, fileSize int64) ([]AblationResult, error) {
	opts.fill()
	if len(bounds) == 0 {
		bounds = []int{64, 256, 1024, 4096}
	}
	if fileSize == 0 {
		fileSize = 8 << 20
	}
	var out []AblationResult
	for _, bound := range bounds {
		tb, err := testbed.New(testbed.Config{
			Kind:         NFSv3,
			DeviceBlocks: opts.DeviceBlocks,
			Seed:         opts.Seed,
			Metrics: cellRecorder(opts.Metrics, "ablate", NFSv3,
				metrics.Tags{"knob": "write-pool", "setting": itoa(bound)}),
		})
		if err != nil {
			return nil, err
		}
		tb.NFSClient.MaxPendingWrites = bound
		res, err := workload.SequentialWrite(tb, workload.SeqRandConfig{
			FileSize: fileSize, ChunkSize: 4096, Seed: 7,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, AblationResult{
			Setting:  fmt.Sprintf("pool=%d pages", bound),
			Elapsed:  res.Elapsed,
			Messages: res.Messages,
		})
	}
	return out, nil
}

// AblateNoAtime measures access-time maintenance cost on iSCSI: a pure
// read workload generates meta-data write traffic only because of atime
// (the paper's warm-read observation in Section 4.4).
func AblateNoAtime(opts Options, reads int) (withAtime, noAtime AblationResult, err error) {
	opts.fill()
	if reads <= 0 {
		reads = 100
	}
	run := func(noatime bool) (AblationResult, error) {
		setting := "atime"
		if noatime {
			setting = "noatime"
		}
		tb, err := testbed.New(testbed.Config{
			Kind:         ISCSI,
			DeviceBlocks: opts.DeviceBlocks,
			NoAtime:      noatime,
			Seed:         opts.Seed,
			Metrics: cellRecorder(opts.Metrics, "ablate", ISCSI,
				metrics.Tags{"knob": "atime", "setting": setting}),
		})
		if err != nil {
			return AblationResult{}, err
		}
		if err := tb.WriteFile("/hot", make([]byte, 64<<10)); err != nil {
			return AblationResult{}, err
		}
		if err := tb.Drain(); err != nil {
			return AblationResult{}, err
		}
		beginCell(tb, nil)
		before := tb.Snap()
		f, err := tb.Open("/hot")
		if err != nil {
			return AblationResult{}, err
		}
		buf := make([]byte, 4096)
		for i := 0; i < reads; i++ {
			if _, err := tb.ReadFileAt(f, int64(i%16)*4096, buf); err != nil {
				return AblationResult{}, err
			}
			tb.Idle(200 * time.Millisecond)
		}
		if err := tb.Drain(); err != nil {
			return AblationResult{}, err
		}
		d := tb.Since(before)
		endCell(tb, nil, map[string]float64{
			"elapsed_ns": float64(d.Elapsed),
			"messages":   float64(d.Messages),
		})
		return AblationResult{Setting: setting, Elapsed: d.Elapsed, Messages: d.Messages}, nil
	}
	if withAtime, err = run(false); err != nil {
		return
	}
	noAtime, err = run(true)
	return
}
