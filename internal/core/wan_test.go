package core

import (
	"bytes"
	"testing"

	"repro/internal/metrics"
	"repro/internal/netqueue"
	"repro/internal/testbed"
)

// wanTestConfig keeps the sweep small enough for unit tests: one tight
// pipe, drop-tail, two counts.
func wanTestConfig() WANConfig {
	return WANConfig{
		Counts:      []int{1, 4},
		Stacks:      []Stack{NFSv3, ISCSI},
		Workloads:   []string{"seq-write"},
		Transports:  []testbed.Transport{testbed.TransportFluid},
		Capacities:  []int64{4 << 20},
		Disciplines: []netqueue.Discipline{netqueue.DropTail},
		Mixes:       []string{"straggler"},
		FileSize:    256 << 10,
		Seed:        5,
	}
}

// TestWANShape checks the congestion-coupling acceptance properties on a
// small sweep: on a uniform LAN mix, latency grows with client count on
// the shared pipe; on the straggler mix, the straggler's mean latency
// exceeds the cluster mean; aggregate throughput never exceeds the pipe.
func TestWANShape(t *testing.T) {
	cfg := wanTestConfig()
	cfg.Mixes = []string{"lan"}
	cells, err := RunWAN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byStack := map[Stack][]WANCell{}
	for _, c := range cells {
		byStack[c.Stack] = append(byStack[c.Stack], c)
	}
	for stack, cs := range byStack {
		if len(cs) != 2 {
			t.Fatalf("%v: %d cells, want 2", stack, len(cs))
		}
		one, four := cs[0], cs[1]
		if four.PerClientLatency <= one.PerClientLatency {
			t.Errorf("%v: latency did not grow with clients on a shared pipe: %v -> %v",
				stack, one.PerClientLatency, four.PerClientLatency)
		}
		if four.HOLWait <= one.HOLWait {
			t.Errorf("%v: head-of-line wait did not grow with clients: %v -> %v",
				stack, one.HOLWait, four.HOLWait)
		}
		for _, c := range cs {
			// Payload throughput can never beat the wire (headers make it
			// strictly less).
			if c.AggBytesPerSec > float64(c.Capacity) {
				t.Errorf("%v/%d: %f B/s exceeds the %d B/s pipe",
					stack, c.Clients, c.AggBytesPerSec, c.Capacity)
			}
		}
	}

	// Straggler attribution: one 40 ms / 1% loss client among LAN peers
	// drags the per-cell maximum above the mean.
	scfg := wanTestConfig()
	scfg.Counts = []int{4}
	scells, err := RunWAN(scfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range scells {
		if c.StragglerLatency <= c.PerClientLatency {
			t.Errorf("%v: straggler mean %v not above cluster mean %v",
				c.Stack, c.StragglerLatency, c.PerClientLatency)
		}
	}
}

// TestWANDeterministicAndInstrumented renders a sweep twice (byte-equal)
// and checks the telemetry stream: experiment=wan cells, shared-link net
// counters, and per-client rtt/loss tags for straggler attribution.
func TestWANDeterministicAndInstrumented(t *testing.T) {
	render := func(sink *metrics.Sink) []byte {
		cfg := wanTestConfig()
		cfg.Counts = []int{2}
		cfg.Stacks = []Stack{ISCSI}
		cfg.Metrics = metrics.NewRecorder(sink, metrics.Tags{"cmd": "wan"})
		cells, err := RunWAN(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		RenderWAN(&buf, cells)
		return buf.Bytes()
	}
	var events bytes.Buffer
	a := render(metrics.NewSink(&events))
	if len(a) == 0 {
		t.Fatal("empty render")
	}
	if !bytes.Equal(a, render(nil)) {
		t.Fatal("WAN sweep not deterministic")
	}

	evs, err := metrics.ReadEvents(bytes.NewReader(events.Bytes()))
	if err != nil {
		t.Fatalf("stream does not validate: %v", err)
	}
	var sawWAN, sawLink, sawStragglerTag, sawResult bool
	for _, e := range evs {
		if e.Tags["experiment"] == "wan" {
			sawWAN = true
		}
		if e.Subsys == metrics.SubsysNet && e.Tags["link"] == "shared" {
			sawLink = true
			if e.Kind == metrics.KindSample && e.Counters["up_bytes"] == 0 && e.Counters["down_bytes"] == 0 {
				t.Errorf("shared-link sample moved no bytes: %+v", e)
			}
		}
		if e.Tags["client"] == "1" && e.Tags["rtt"] == "40ms" && e.Tags["loss"] == "0.01" {
			sawStragglerTag = true
		}
		if e.Subsys == metrics.SubsysRun && e.Kind == metrics.KindPoint &&
			e.Values["agg_bytes_per_sec"] > 0 {
			sawResult = true
		}
	}
	if !sawWAN || !sawLink || !sawStragglerTag || !sawResult {
		t.Fatalf("stream missing wan=%v link=%v stragglerTag=%v result=%v",
			sawWAN, sawLink, sawStragglerTag, sawResult)
	}
}

// TestWANCollapseIsACell: a configuration harsh enough to abort TCP
// connections (a starved pipe with a switch buffer a fraction of the
// aggregate flight size) reports Collapsed cells — the regime boundary —
// instead of failing the sweep, renders without error, and keeps the
// telemetry stream's begin/end marks paired (the end mark carrying
// collapsed=1 as its only value).
func TestWANCollapseIsACell(t *testing.T) {
	var events bytes.Buffer
	cfg := WANConfig{
		Counts:      []int{8},
		Stacks:      []Stack{NFSv3},
		Workloads:   []string{"seq-write"},
		Transports:  []testbed.Transport{testbed.TransportTCP},
		Capacities:  []int64{500_000},
		Disciplines: []netqueue.Discipline{netqueue.DropTail},
		Mixes:       []string{"lan"},
		QueueBytes:  8 << 10,
		FileSize:    256 << 10,
		Seed:        5,
		Metrics:     metrics.NewRecorder(metrics.NewSink(&events), metrics.Tags{"cmd": "wan"}),
	}
	cells, err := RunWAN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 {
		t.Fatalf("%d cells, want 1", len(cells))
	}
	if !cells[0].Collapsed {
		t.Fatal("starved-pipe cell did not collapse (premise broken: tighten the config)")
	}
	var buf bytes.Buffer
	RenderWAN(&buf, cells)
	if !bytes.Contains(buf.Bytes(), []byte("collapse")) {
		t.Fatalf("render does not mark the collapsed cell:\n%s", buf.String())
	}

	evs, err := metrics.ReadEvents(bytes.NewReader(events.Bytes()))
	if err != nil {
		t.Fatalf("stream does not validate: %v", err)
	}
	begins, ends, sawCollapsed := 0, 0, false
	for _, e := range evs {
		switch e.Tags["phase"] {
		case "begin":
			begins++
		case "end":
			ends++
		}
		if e.Subsys == metrics.SubsysRun && e.Values["collapsed"] == 1 {
			sawCollapsed = true
		}
	}
	if begins == 0 || begins != ends {
		t.Fatalf("unpaired marks in collapsed stream: %d begins, %d ends", begins, ends)
	}
	if !sawCollapsed {
		t.Fatal("no collapsed=1 result point in the stream")
	}
}

// TestMixClients covers the built-in heterogeneity profiles.
func TestMixClients(t *testing.T) {
	for _, mix := range WANMixes {
		cs, err := MixClients(mix, 4)
		if err != nil || len(cs) != 4 {
			t.Fatalf("%s: %v, %v", mix, cs, err)
		}
	}
	straggler, _ := MixClients("straggler", 4)
	if straggler[3].LossRate != 0.01 || straggler[0].LossRate != 0 {
		t.Fatalf("straggler mix: %+v", straggler)
	}
	mixed, _ := MixClients("mixed", 4)
	if mixed[0].RTT == mixed[1].RTT {
		t.Fatalf("mixed mix not alternating: %+v", mixed)
	}
	if _, err := MixClients("nope", 2); err == nil {
		t.Fatal("unknown mix accepted")
	}
}
