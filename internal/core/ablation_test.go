package core

import (
	"strings"
	"testing"
	"time"
)

// TestAblateCommitInterval verifies the aggregation-window causality: a
// longer commit interval means fewer wire messages for the same updates.
func TestAblateCommitInterval(t *testing.T) {
	res, err := AblateCommitInterval(testOpts(),
		[]time.Duration{100 * time.Millisecond, 10 * time.Second}, 60)
	if err != nil {
		t.Fatal(err)
	}
	short, long := res[0], res[1]
	t.Logf("short interval: %d msgs; long: %d msgs", short.Messages, long.Messages)
	if long.Messages >= short.Messages {
		t.Errorf("longer commit interval should aggregate more: %d vs %d",
			long.Messages, short.Messages)
	}
}

// TestAblateSyncExport verifies durability pricing: the spec-compliant
// sync export is slower than the era's async default, message counts equal
// (durability is a server-side property).
func TestAblateSyncExport(t *testing.T) {
	async, sync, err := AblateSyncExport(testOpts(), 100)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("async: %v/%d msgs; sync: %v/%d msgs",
		async.Elapsed, async.Messages, sync.Elapsed, sync.Messages)
	if sync.Elapsed <= async.Elapsed {
		t.Errorf("sync export should cost time: %v vs %v", sync.Elapsed, async.Elapsed)
	}
	if sync.Messages != async.Messages {
		t.Errorf("export mode changed wire messages: %d vs %d", sync.Messages, async.Messages)
	}
}

// TestAblateWritePool verifies Section 4.5's mechanism: a bigger async
// pool absorbs more of the write stream before degenerating.
func TestAblateWritePool(t *testing.T) {
	res, err := AblateWritePool(testOpts(), []int{64, 4096}, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	small, big := res[0], res[1]
	t.Logf("pool 64: %v; pool 4096: %v", small.Elapsed, big.Elapsed)
	if big.Elapsed >= small.Elapsed {
		t.Errorf("larger pool should be faster: %v vs %v", big.Elapsed, small.Elapsed)
	}
}

// TestAblateNoAtime verifies access-time maintenance is the only write
// traffic of a warm read workload.
func TestAblateNoAtime(t *testing.T) {
	withAtime, noAtime, err := AblateNoAtime(testOpts(), 60)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("atime: %d msgs; noatime: %d msgs", withAtime.Messages, noAtime.Messages)
	if noAtime.Messages >= withAtime.Messages {
		t.Errorf("noatime should eliminate messages: %d vs %d",
			noAtime.Messages, withAtime.Messages)
	}
	if noAtime.Messages != 0 {
		t.Errorf("warm reads without atime should be traffic-free, got %d", noAtime.Messages)
	}
}

// TestShapeChecks runs the conformance checker against regenerated data
// for a representative subset.
func TestShapeChecks(t *testing.T) {
	op, _ := FindMicroOp("mkdir")
	row := SyscallRow{Op: "mkdir", Depth0: map[Stack]int64{}, Depth3: map[Stack]int64{}}
	for _, s := range []Stack{NFSv3, NFSv4, ISCSI} {
		for _, d := range []int{0, 3} {
			n, err := MicroCount(testOpts(), op, d, s, false)
			if err != nil {
				t.Fatal(err)
			}
			if d == 0 {
				row.Depth0[s] = n
			} else {
				row.Depth3[s] = n
			}
		}
	}
	checks := CheckTable2Shapes([]SyscallRow{row})
	var sb strings.Builder
	if fails := RenderChecks(&sb, "Table 2 conformance", checks); fails > 0 {
		t.Errorf("shape checks failed:\n%s", sb.String())
	}
	t.Log(sb.String())
}
