package core

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/health"
	"repro/internal/metrics"
	"repro/internal/netqueue"
	"repro/internal/simnet"
	"repro/internal/testbed"
	"repro/internal/tracing"
	"repro/internal/workload"
)

// WAN experiment: the congestion-coupled cluster sweep. Every client's
// traffic multiplexes through one capacity-limited bottleneck link
// (internal/netqueue) instead of an infinitely-parallel segment, and the
// sweep crosses {bottleneck capacity x queue discipline x per-client
// RTT/loss mix} over growing client counts on all four stacks. It is the
// physically-coupled counterpart of the scaling sweep: aggregate
// throughput must plateau at the pipe while per-client latency grows
// with the standing queue, drop-tail overflow pushes TCP flows into
// recovery against each other, and WAN stragglers contend for the same
// buffer as their LAN peers.

// WANMixes names the built-in per-client heterogeneity profiles.
var WANMixes = []string{"lan", "wan", "straggler", "mixed"}

// WANWorkloads lists the supported WAN-sweep workloads.
var WANWorkloads = []string{"seq-write", "seq-read", "rand-read", "rand-write"}

// MixClients expands a named mix into per-client wire overrides for an
// n-client cluster: "lan" (uniform 200 us), "wan" (uniform 40 ms + 0.1%
// loss), "straggler" (LAN except one 40 ms / 1% loss client), and
// "mixed" (alternating LAN / WAN clients).
func MixClients(mix string, n int) ([]testbed.ClientNet, error) {
	if n < 1 {
		return nil, fmt.Errorf("WAN mix needs at least one client, got %d", n)
	}
	lan := testbed.ClientNet{RTT: 200 * time.Microsecond}
	wan := testbed.ClientNet{RTT: 40 * time.Millisecond, LossRate: 0.001}
	out := make([]testbed.ClientNet, n)
	switch mix {
	case "lan":
		for i := range out {
			out[i] = lan
		}
	case "wan":
		for i := range out {
			out[i] = wan
		}
	case "straggler":
		for i := range out {
			out[i] = lan
		}
		out[n-1] = testbed.ClientNet{RTT: 40 * time.Millisecond, LossRate: 0.01}
	case "mixed":
		for i := range out {
			if i%2 == 0 {
				out[i] = lan
			} else {
				out[i] = wan
			}
		}
	default:
		return nil, fmt.Errorf("unknown WAN mix %q (have lan, wan, straggler, mixed)", mix)
	}
	return out, nil
}

// WANConfig parameterizes the sweep.
type WANConfig struct {
	// Counts are the cluster sizes to sweep (default 1,2,4,8,16).
	Counts []int
	// Stacks restricts the sweep (default all four).
	Stacks []Stack
	// Workloads to run (default seq-write, the pipe-saturating one).
	Workloads []string
	// Transports are the wire models swept under the shared link
	// (default TCP — the congestion-response story; fluid also valid).
	Transports []testbed.Transport
	// Capacities are bottleneck bandwidths in bytes/sec per direction
	// (default Gigabit goodput and a 100 Mbit-class 12 MB/s pipe).
	Capacities []int64
	// Disciplines are the queue disciplines swept (default both).
	Disciplines []netqueue.Discipline
	// Mixes are per-client heterogeneity profiles (default lan,
	// straggler; see MixClients).
	Mixes []string
	// QueueBytes bounds the bottleneck buffer per direction
	// (default 256 KB).
	QueueBytes int
	// Conns is the iSCSI MC/S connection count under TCP (default 1).
	Conns int
	// WindowBytes caps each TCP connection's window (default 64 KB).
	WindowBytes int
	// FileSize is the per-client file size (default 1 MB).
	FileSize int64
	// ChunkSize is the per-op transfer unit (default 4 KB).
	ChunkSize int
	// DeviceBlocks is the per-client volume size in 4 KB blocks
	// (default sized from FileSize; the NFS export scales by count).
	DeviceBlocks int64
	// Seed for loss injection and workload randomness.
	Seed int64
	// Health, when non-nil, attaches a gauge scraper + SLO engine to
	// every cell (one monitor per cell; saturation objectives are the
	// useful ones here — no fault runner observes ops in this sweep).
	// Nil keeps the sweep byte-identical to a health-free run.
	Health *health.Config
	// Metrics, when non-nil, receives per-cell telemetry tagged with the
	// sweep axes as experiment=wan (see docs/METRICS.md).
	Metrics *metrics.Recorder
	// Tracer, when non-nil, records per-op span trees for every cell
	// (see docs/TRACING.md).
	Tracer *tracing.Tracer
}

func (c *WANConfig) fill() {
	if len(c.Counts) == 0 {
		c.Counts = []int{1, 2, 4, 8, 16}
	}
	if len(c.Stacks) == 0 {
		c.Stacks = testbed.AllKinds
	}
	if len(c.Workloads) == 0 {
		c.Workloads = []string{"seq-write"}
	}
	if len(c.Transports) == 0 {
		c.Transports = []testbed.Transport{testbed.TransportTCP}
	}
	if len(c.Capacities) == 0 {
		c.Capacities = []int64{117 << 20, 12 << 20}
	}
	if len(c.Disciplines) == 0 {
		c.Disciplines = []netqueue.Discipline{netqueue.DropTail, netqueue.DRR}
	}
	if len(c.Mixes) == 0 {
		c.Mixes = []string{"lan", "straggler"}
	}
	if c.QueueBytes == 0 {
		c.QueueBytes = 256 << 10
	}
	if c.Conns == 0 {
		c.Conns = 1
	}
	if c.FileSize == 0 {
		c.FileSize = 1 << 20
	}
	if c.ChunkSize == 0 {
		c.ChunkSize = 4096
	}
	if c.DeviceBlocks == 0 {
		c.DeviceBlocks = 16384
		if need := c.FileSize / 4096 * 2; need > c.DeviceBlocks {
			c.DeviceBlocks = need
		}
	}
}

// WANCell is one (workload, stack, transport, mix, discipline, capacity,
// client-count) measurement over the shared bottleneck.
type WANCell struct {
	Workload   string
	Stack      Stack
	Transport  testbed.Transport
	Clients    int
	Capacity   int64
	Discipline netqueue.Discipline
	Mix        string

	// Elapsed is the cluster-wide measured window (run + drain);
	// AggBytesPerSec the aggregate payload throughput over it.
	Elapsed        time.Duration
	AggBytesPerSec float64
	// PerClientLatency is the mean per-syscall latency across clients;
	// StragglerLatency the slowest client's mean — the straggler signal.
	PerClientLatency time.Duration
	StragglerLatency time.Duration
	// ServerCPU is mean server CPU utilization over the window.
	ServerCPU float64
	// Link-level congestion signals over the window: drop-tail queue
	// drops, total head-of-line wait, and the high-water backlog.
	QueueDrops    int64
	HOLWait       time.Duration
	MaxDepthBytes int64
	// Collapsed marks a cell whose configuration suffered congestion
	// collapse: a transport connection died (TCP retransmissions
	// exhausted, or a datagram retry budget spent) before the workload
	// completed, so the cell carries no measurements. The paper's
	// harness would report "server not responding" here; the sweep
	// reports the regime boundary instead of aborting.
	Collapsed bool
}

// Label names the variant the way the tables print it.
func (c WANCell) Label() string {
	if c.Stack == ISCSI && c.Transport == testbed.TransportTCP {
		return fmt.Sprintf("%s/tcp", c.Stack)
	}
	return fmt.Sprintf("%s/%s", c.Stack, c.Transport)
}

// RunWAN sweeps the shared-bottleneck cluster across every axis. Cells
// come out in deterministic order; identical seeds give identical cells.
// Invalid stack/transport pairs (iSCSI over UDP) are skipped. A cell
// whose configuration collapses — a transport connection dies under
// sustained queue overflow before the workload completes — comes back
// with Collapsed set rather than aborting the sweep (its telemetry end
// mark carries collapsed=1 and no measurements): in a congestion study
// the collapse boundary is a finding.
func RunWAN(cfg WANConfig) ([]WANCell, error) {
	cfg.fill()
	var cells []WANCell
	for _, wl := range cfg.Workloads {
		for _, mix := range cfg.Mixes {
			for _, q := range cfg.Disciplines {
				for _, capacity := range cfg.Capacities {
					for _, stack := range cfg.Stacks {
						for _, tr := range cfg.Transports {
							if stack == ISCSI && tr == testbed.TransportUDP {
								continue
							}
							for _, n := range cfg.Counts {
								cell, err := runWANCell(cfg, wl, mix, q, capacity, stack, tr, n)
								if err != nil {
									return nil, fmt.Errorf("wan %s/%s/%s/%d B/s/%v(%v)/%d: %w",
										wl, mix, q, capacity, stack, tr, n, err)
								}
								cells = append(cells, cell)
							}
						}
					}
				}
			}
		}
	}
	return cells, nil
}

// runWANCell builds one congestion-coupled cluster and measures one
// workload on it. A transport-broken error anywhere in the cell (mount,
// setup or the measured window) marks it Collapsed instead of failing;
// a collapse inside the measured window still emits the cell's end mark
// (collapsed=1) so the stream's begin/end pairs stay balanced.
func runWANCell(cfg WANConfig, wl, mix string, q netqueue.Discipline,
	capacity int64, stack Stack, tr testbed.Transport, n int) (WANCell, error) {
	axes := WANCell{Workload: wl, Stack: stack, Transport: tr,
		Clients: n, Capacity: capacity, Discipline: q, Mix: mix}
	collapsed := func(err error) bool { return errors.Is(err, simnet.ErrTransportBroken) }
	perClient, err := MixClients(mix, n)
	if err != nil {
		return WANCell{}, err
	}
	dev := cfg.DeviceBlocks
	if stack != ISCSI {
		dev *= int64(n)
	}
	conns := 1
	if stack == ISCSI && tr == testbed.TransportTCP {
		conns = cfg.Conns
	}
	tags := metrics.Tags{
		"workload": wl,
		"clients":  itoa(n),
		"capacity": strconv.FormatInt(capacity, 10),
		"qdisc":    q.String(),
		"mix":      mix,
		"conns":    itoa(conns),
	}
	var mon *health.Monitor
	if cfg.Health != nil {
		if mon, err = health.New(*cfg.Health); err != nil {
			return WANCell{}, err
		}
	}
	cl, err := testbed.NewCluster(testbed.ClusterConfig{
		Kind:         stack,
		Clients:      n,
		DeviceBlocks: dev,
		Seed:         cfg.Seed,
		Transport:    tr,
		Conns:        conns,
		WindowBytes:  cfg.WindowBytes,
		Shared: &netqueue.Config{
			Bandwidth:  capacity,
			QueueBytes: cfg.QueueBytes,
			Discipline: q,
		},
		PerClient: perClient,
		Metrics:   cellRecorder(cfg.Metrics, "wan", stack, tags),
		Tracer:    cfg.Tracer,
		Health:    mon,
	})
	if err != nil {
		if collapsed(err) {
			axes.Collapsed = true
			return axes, nil
		}
		return WANCell{}, err
	}

	src := workload.SeqRandConfig{FileSize: cfg.FileSize, ChunkSize: cfg.ChunkSize}

	// Unmeasured setup: per-client directories, plus layout and a cold
	// cache for the read workloads.
	for i, c := range cl.Clients {
		if err := c.Mkdir(clientDir(i)); err != nil {
			if collapsed(err) {
				axes.Collapsed = true
				return axes, nil
			}
			return WANCell{}, err
		}
	}
	if wl == "seq-read" || wl == "rand-read" {
		prep := make([]func() (bool, error), n)
		for i, c := range cl.Clients {
			pc := src
			pc.Seed = cfg.Seed + int64(i)
			prep[i] = workload.PrepareFileSteps(c, clientDir(i)+"/f", pc)
		}
		err := cl.Run(prep)
		if err == nil {
			err = cl.ColdCache()
		}
		if err != nil {
			if collapsed(err) {
				axes.Collapsed = true
				return axes, nil
			}
			return WANCell{}, err
		}
	}
	cl.Align()

	drivers := make([]func() (bool, error), n)
	var aggBytes int64
	for i, c := range cl.Clients {
		pc := src
		pc.Seed = cfg.Seed + int64(i)
		path := clientDir(i) + "/f"
		switch wl {
		case "seq-write":
			drivers[i] = workload.SequentialWriteSteps(c, path, pc)
			aggBytes += pc.SeqBytes()
		case "seq-read":
			drivers[i] = workload.SequentialReadSteps(c, path, pc)
			aggBytes += pc.SeqBytes()
		case "rand-read":
			drivers[i] = workload.RandomReadSteps(c, path, pc)
			aggBytes += pc.RandBytes()
		case "rand-write":
			drivers[i] = workload.RandomWriteSteps(c, path, pc)
			aggBytes += pc.RandBytes()
		default:
			return WANCell{}, fmt.Errorf("unknown WAN workload %q", wl)
		}
	}

	// Measured window: interleaved run, then drain to quiescence.
	beginClusterCell(cl, nil)
	cl.Link.RearmDepth() // window-scoped peak backlog, setup excluded
	before := cl.Snap()
	linkBefore := cl.Link.Stats()
	startOps := make([]int64, n)
	startT := make([]time.Duration, n)
	for i, c := range cl.Clients {
		startOps[i] = c.Ops()
		startT[i] = c.Clock.Now()
	}
	err = cl.Run(drivers)
	var latSum, latMax time.Duration
	for i, c := range cl.Clients {
		if ops := c.Ops() - startOps[i]; ops > 0 {
			lat := (c.Clock.Now() - startT[i]) / time.Duration(ops)
			latSum += lat
			if lat > latMax {
				latMax = lat
			}
		}
	}
	if err == nil {
		err = cl.Drain()
	}
	if err != nil {
		if collapsed(err) {
			endClusterCell(cl, nil, map[string]float64{"collapsed": 1})
			axes.Collapsed = true
			return axes, nil
		}
		return WANCell{}, err
	}
	d := cl.Since(before)
	link := cl.Link.Stats()
	elapsed := d.Elapsed
	if elapsed <= 0 {
		elapsed = time.Millisecond
	}
	cell := axes
	cell.Elapsed = elapsed
	cell.AggBytesPerSec = float64(aggBytes) / elapsed.Seconds()
	cell.PerClientLatency = latSum / time.Duration(n)
	cell.StragglerLatency = latMax
	cell.ServerCPU = float64(d.ServerBusy) / float64(elapsed)
	cell.QueueDrops = link.Drops() - linkBefore.Drops()
	cell.HOLWait = link.HOLWait() - linkBefore.HOLWait()
	cell.MaxDepthBytes = cl.Link.DepthHighWater()
	endClusterCell(cl, nil, map[string]float64{
		"elapsed_ns":            float64(cell.Elapsed),
		"agg_bytes_per_sec":     cell.AggBytesPerSec,
		"per_client_latency_ns": float64(cell.PerClientLatency),
		"straggler_latency_ns":  float64(cell.StragglerLatency),
		"server_cpu":            cell.ServerCPU,
		"queue_drops":           float64(cell.QueueDrops),
		"hol_wait_ns":           float64(cell.HOLWait),
		"depth_max_bytes":       float64(cell.MaxDepthBytes),
	})
	return cell, nil
}

// RenderWAN prints the sweep: one block per (workload, mix, discipline,
// capacity) panel, stacks as row groups, client counts as columns.
func RenderWAN(w io.Writer, cells []WANCell) {
	type panel struct {
		wl, mix  string
		q        netqueue.Discipline
		capacity int64
	}
	var panels []panel
	var counts []int
	seenP := map[panel]bool{}
	seenC := map[int]bool{}
	byPanel := map[panel]map[string]map[int]WANCell{}
	var labels []string
	seenL := map[string]bool{}
	for _, c := range cells {
		p := panel{c.Workload, c.Mix, c.Discipline, c.Capacity}
		if !seenP[p] {
			seenP[p] = true
			panels = append(panels, p)
			byPanel[p] = map[string]map[int]WANCell{}
		}
		if !seenC[c.Clients] {
			seenC[c.Clients] = true
			counts = append(counts, c.Clients)
		}
		l := c.Label()
		if !seenL[l] {
			seenL[l] = true
			labels = append(labels, l)
		}
		if byPanel[p][l] == nil {
			byPanel[p][l] = map[int]WANCell{}
		}
		byPanel[p][l][c.Clients] = c
	}

	row := func(byCount map[int]WANCell, f func(WANCell) string) string {
		out := ""
		for _, n := range counts {
			c, ok := byCount[n]
			if !ok {
				out += fmt.Sprintf(" %9s", "-")
				continue
			}
			out += fmt.Sprintf(" %9s", f(c))
		}
		return out
	}

	for _, p := range panels {
		fmt.Fprintf(w, "WAN sweep: %s, mix=%s, qdisc=%s, pipe=%.1f MB/s, shared bottleneck\n",
			p.wl, p.mix, p.q, float64(p.capacity)/1e6)
		fmt.Fprintf(w, "%-22s", "clients")
		for _, n := range counts {
			fmt.Fprintf(w, " %9d", n)
		}
		fmt.Fprintln(w)
		for _, l := range labels {
			byCount := byPanel[p][l]
			if byCount == nil {
				continue
			}
			fmt.Fprintf(w, "%-22s%s\n", l+" agg MB/s",
				row(byCount, func(c WANCell) string {
					if c.Collapsed {
						return "collapse"
					}
					return fmt.Sprintf("%.1f", c.AggBytesPerSec/1e6)
				}))
			fmt.Fprintf(w, "%-22s%s\n", "  per-op latency",
				row(byCount, func(c WANCell) string {
					if c.Collapsed {
						return "-"
					}
					return c.PerClientLatency.Round(time.Microsecond).String()
				}))
			fmt.Fprintf(w, "%-22s%s\n", "  straggler",
				row(byCount, func(c WANCell) string {
					if c.Collapsed {
						return "-"
					}
					return c.StragglerLatency.Round(time.Microsecond).String()
				}))
			fmt.Fprintf(w, "%-22s%s\n", "  queue drops",
				row(byCount, func(c WANCell) string {
					if c.Collapsed {
						return "-"
					}
					return fmt.Sprintf("%d", c.QueueDrops)
				}))
		}
		fmt.Fprintln(w)
	}
}
