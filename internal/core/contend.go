package core

import (
	"fmt"
	"io"
	"time"

	"repro/internal/metrics"
	"repro/internal/testbed"
	"repro/internal/tracing"
	"repro/internal/workload"
)

// Contention experiment: the cross-client sharing axis. Each cell
// builds a cluster with sharing enabled, points a conflict-heavy
// workload — lock ping-pong, locked shared appends, or a writer against
// readers — at the one shared object, and measures what the sharing
// machinery costs on each stack: lock round trips and denied polls on
// NFS, whole-LUN reservation traffic on iSCSI. The paper compares the
// stacks' happy paths and warns that sharing is where the architectures
// diverge; this sweep quantifies the divergence.

// Contention workload names.
const (
	ContendPingPong = "pingpong"
	ContendAppend   = "append"
	ContendRW       = "readerwriter"
)

// ContendWorkloads is the default workload set, in sweep order.
var ContendWorkloads = []string{ContendPingPong, ContendAppend, ContendRW}

// ContendConfig parameterizes the sweep.
type ContendConfig struct {
	// Workloads restricts the contention workloads (default all three).
	Workloads []string
	// Stacks restricts the sweep (default all four).
	Stacks []Stack
	// Transports are the wire models swept (default fluid and TCP).
	Transports []testbed.Transport
	// Clients is the cluster size (default 4).
	Clients int
	// Iters is the per-client locked-operation count (default 50).
	Iters int
	// RecordSize is the shared-record size in bytes (default 4096).
	RecordSize int
	// PollInterval is the denied-lock poll backoff (default 2 ms).
	PollInterval time.Duration
	// Conns is the iSCSI MC/S connection count under TCP (default 1).
	Conns int
	// WindowBytes caps each TCP connection's window (default 64 KB).
	WindowBytes int
	// DeviceBlocks sizes each volume in 4 KB blocks (default 16384).
	DeviceBlocks int64
	// Seed drives loss and scheduling randomness.
	Seed int64
	// Metrics, when non-nil, receives per-cell telemetry tagged with the
	// sweep axes as experiment=contend (see docs/METRICS.md).
	Metrics *metrics.Recorder
	// Tracer, when non-nil, records per-op span trees for every cell.
	Tracer *tracing.Tracer
}

func (c *ContendConfig) fill() {
	if len(c.Workloads) == 0 {
		c.Workloads = ContendWorkloads
	}
	if len(c.Stacks) == 0 {
		c.Stacks = testbed.AllKinds
	}
	if len(c.Transports) == 0 {
		c.Transports = []testbed.Transport{testbed.TransportFluid, testbed.TransportTCP}
	}
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.Iters <= 0 {
		c.Iters = 50
	}
	if c.Conns == 0 {
		c.Conns = 1
	}
	if c.DeviceBlocks == 0 {
		c.DeviceBlocks = 16384
	}
}

// ContendCell is one (workload, stack, transport) contention measurement.
type ContendCell struct {
	Workload  string
	Stack     Stack
	Transport testbed.Transport
	Clients   int

	// Ops are the lock-protected operations completed; Elapsed is the
	// measured window; Rate is Ops/Elapsed in ops/sec.
	Ops     int64
	Elapsed time.Duration
	Rate    float64
	// Grants/Denials are the sharing machinery's admission counts: lock
	// manager grants and denied polls on NFS, reservations taken and
	// reservation conflicts on iSCSI.
	Grants, Denials int64
	// WaitTotal sums every client's denied-poll backoff; WaitMax is the
	// worst single client (the fairness number).
	WaitTotal, WaitMax time.Duration
}

// Label names the variant the way the tables print it.
func (c ContendCell) Label() string {
	if c.Stack == ISCSI && c.Transport == testbed.TransportTCP {
		return fmt.Sprintf("%s/tcp", c.Stack)
	}
	return fmt.Sprintf("%s/%s", c.Stack, c.Transport)
}

// RunContention sweeps contention workloads over stacks and transports.
// Cells come out in deterministic order; identical seeds give
// byte-identical metric and trace streams (the determinism suite
// enforces this). Invalid pairs (iSCSI over UDP) are skipped.
func RunContention(cfg ContendConfig) ([]ContendCell, error) {
	cfg.fill()
	var cells []ContendCell
	for _, wl := range cfg.Workloads {
		for _, stack := range cfg.Stacks {
			for _, tr := range cfg.Transports {
				if stack == ISCSI && tr == testbed.TransportUDP {
					continue
				}
				cell, err := runContendCell(cfg, wl, stack, tr)
				if err != nil {
					return nil, fmt.Errorf("contend %s/%v(%v): %w", wl, stack, tr, err)
				}
				cells = append(cells, cell)
			}
		}
	}
	return cells, nil
}

// shareCounters reads the cell's admission counters from whichever
// sharing table the stack uses.
func shareCounters(cl *testbed.Cluster) (grants, denials int64) {
	if m := cl.Locks(); m != nil {
		c := m.Counters()
		return c["grants"], c["denials"] + c["grace_denials"]
	}
	if r := cl.Reservations(); r != nil {
		c := r.Counters()
		return c["reserves"], c["conflicts"]
	}
	return 0, 0
}

// runContendCell builds one sharing-enabled cluster and drives one
// contention workload across its clients.
func runContendCell(cfg ContendConfig, wl string, stack Stack, tr testbed.Transport) (ContendCell, error) {
	conns := 1
	if stack == ISCSI && tr == testbed.TransportTCP {
		conns = cfg.Conns
	}
	tags := metrics.Tags{
		"workload": wl,
		"clients":  itoa(cfg.Clients),
		"conns":    itoa(conns),
	}
	cl, err := testbed.NewCluster(testbed.ClusterConfig{
		Kind:         stack,
		Clients:      cfg.Clients,
		DeviceBlocks: cfg.DeviceBlocks,
		Seed:         cfg.Seed,
		Transport:    tr,
		Conns:        conns,
		WindowBytes:  cfg.WindowBytes,
		Sharing:      &testbed.SharingConfig{},
		Metrics:      cellRecorder(cfg.Metrics, "contend", stack, tags),
		Tracer:       cfg.Tracer,
	})
	if err != nil {
		return ContendCell{}, err
	}
	wcfg := workload.ContendConfig{
		Iters:        cfg.Iters,
		RecordSize:   cfg.RecordSize,
		PollInterval: cfg.PollInterval,
	}
	if err := workload.SetupShared(cl.Clients, wcfg); err != nil {
		return ContendCell{}, err
	}

	var steps []workload.Steps
	var stats *workload.ContendStats
	switch wl {
	case ContendPingPong:
		steps, stats = workload.LockPingPong(cl.Clients, wcfg)
	case ContendAppend:
		steps, stats = workload.SharedAppend(cl.Clients, wcfg)
	case ContendRW:
		steps, stats = workload.ReaderWriter(cl.Clients, wcfg)
	default:
		return ContendCell{}, fmt.Errorf("unknown contention workload %q", wl)
	}

	beginClusterCell(cl, nil)
	g0, d0 := shareCounters(cl)
	t0 := cl.Align()
	if err := cl.Run(workload.Drivers(steps)); err != nil {
		return ContendCell{}, err
	}
	t1 := cl.Align()
	g1, d1 := shareCounters(cl)

	cell := ContendCell{
		Workload:  wl,
		Stack:     stack,
		Transport: tr,
		Clients:   cfg.Clients,
		Ops:       int64(cfg.Iters) * int64(cfg.Clients),
		Elapsed:   t1 - t0,
		Grants:    g1 - g0,
		Denials:   d1 - d0,
	}
	if cell.Elapsed > 0 {
		cell.Rate = float64(cell.Ops) / cell.Elapsed.Seconds()
	}
	for _, w := range stats.Waits {
		cell.WaitTotal += w
		if w > cell.WaitMax {
			cell.WaitMax = w
		}
	}
	endClusterCell(cl, nil, map[string]float64{
		"ops_per_sec":   cell.Rate,
		"ops":           float64(cell.Ops),
		"elapsed_ns":    float64(cell.Elapsed),
		"lock_grants":   float64(cell.Grants),
		"lock_denials":  float64(cell.Denials),
		"wait_total_ns": float64(cell.WaitTotal),
		"wait_max_ns":   float64(cell.WaitMax),
	})
	return cell, nil
}

// RenderContention prints the sweep: one panel per workload, one row per
// stack/transport variant.
func RenderContention(w io.Writer, cells []ContendCell) {
	var wls []string
	seenW := map[string]bool{}
	var labels []string
	seenL := map[string]bool{}
	byCell := map[string]map[string]ContendCell{}
	for _, c := range cells {
		if !seenW[c.Workload] {
			seenW[c.Workload] = true
			wls = append(wls, c.Workload)
			byCell[c.Workload] = map[string]ContendCell{}
		}
		if l := c.Label(); !seenL[l] {
			seenL[l] = true
			labels = append(labels, l)
		}
		byCell[c.Workload][c.Label()] = c
	}
	for _, wl := range wls {
		fmt.Fprintf(w, "contend: %s\n", wl)
		fmt.Fprintf(w, "%-16s %10s %10s %8s %8s %12s %12s\n",
			"stack", "ops/s", "elapsed", "grants", "denials", "wait(total)", "wait(max)")
		for _, l := range labels {
			c, ok := byCell[wl][l]
			if !ok {
				continue
			}
			fmt.Fprintf(w, "%-16s %10.1f %10s %8d %8d %12s %12s\n",
				l, c.Rate, c.Elapsed.Round(time.Millisecond), c.Grants, c.Denials,
				c.WaitTotal.Round(time.Millisecond), c.WaitMax.Round(time.Millisecond))
		}
		fmt.Fprintln(w)
	}
}
