package core

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/fault"
	"repro/internal/health"
	"repro/internal/metrics"
	"repro/internal/simnet"
	"repro/internal/testbed"
	"repro/internal/tracing"
)

// Fault experiment: the failure-and-recovery axis. Each cell builds a
// fresh cluster, runs the seeded fault plan from internal/fault against
// it — server crash + journal-replay reboot, RAID member failure +
// contended rebuild, network partitions, client crash — and reports
// time-to-recover, degraded-mode throughput, and lost/retried op counts
// per {family x stack x transport}. The paper benchmarks the happy
// path; this sweep asks which stack degrades and comes back better when
// the same hardware faults hit both.

// FaultConfig parameterizes the sweep.
type FaultConfig struct {
	// Families restricts the fault families (default all four).
	Families []fault.Family
	// Stacks restricts the sweep (default all four).
	Stacks []Stack
	// Transports are the wire models swept (default fluid and TCP).
	Transports []testbed.Transport
	// Clients is the cluster size (default 2: a victim and a witness).
	Clients int
	// Warmup is the fault-free lead-in; Outage each inject-to-heal
	// distance; Flaps the link-flap cycle count (see fault.PlanConfig).
	Warmup, Outage time.Duration
	Flaps          int
	// Victim selects the crashed client / failed array member.
	Victim int
	// Conns is the iSCSI MC/S connection count under TCP (default 1).
	Conns int
	// WindowBytes caps each TCP connection's window (default 64 KB).
	WindowBytes int
	// DeviceBlocks sizes each volume in 4 KB blocks (default 16384 =
	// 64 MB, small enough that a RAID rebuild completes in-cell).
	DeviceBlocks int64
	// Seed drives fault-instant jitter, loss and workload randomness.
	Seed int64
	// Health, when non-nil, attaches a gauge scraper + SLO engine to
	// every cell (alert state is per-cell: each cell gets its own
	// monitor built from this spec). Nil keeps the sweep byte-identical
	// to a health-free run.
	Health *health.Config
	// Metrics, when non-nil, receives per-cell telemetry tagged with the
	// sweep axes as experiment=fault (see docs/METRICS.md).
	Metrics *metrics.Recorder
	// Tracer, when non-nil, records per-op span trees for every cell.
	Tracer *tracing.Tracer
}

func (c *FaultConfig) fill() {
	if len(c.Families) == 0 {
		c.Families = append([]fault.Family(nil), fault.Families...)
	}
	if len(c.Stacks) == 0 {
		c.Stacks = testbed.AllKinds
	}
	if len(c.Transports) == 0 {
		c.Transports = []testbed.Transport{testbed.TransportFluid, testbed.TransportTCP}
	}
	if c.Clients <= 0 {
		c.Clients = 2
	}
	if c.Conns == 0 {
		c.Conns = 1
	}
	if c.DeviceBlocks == 0 {
		c.DeviceBlocks = 16384
	}
}

// FaultCell is one (family, stack, transport) recovery measurement.
type FaultCell struct {
	Family    fault.Family
	Stack     Stack
	Transport testbed.Transport
	Clients   int

	// Inject/Healed/Recovered are absolute virtual times; TTR is the
	// client-visible outage, repair included (see fault.Result).
	Inject, Healed, Recovered, TTR time.Duration
	// Window throughputs in successful ops/sec, and the matching counts.
	PreRate, DegradedRate, PostRate float64
	PreOps, DegradedOps, PostOps    int64
	// FailedOps are op errors clients observed; LostOps adds the ops a
	// crashed client never issued.
	FailedOps, LostOps int64
	// Fault-path traffic: RAID rebuild member blocks, wire + RPC
	// retransmissions, frames the partition ate.
	RebuildBlocks, Retransmits, Dropped int64
	// Collapsed marks a cell whose service never recovered before the
	// run's hard stop (or whose transport died during setup).
	Collapsed bool
}

// Label names the variant the way the tables print it.
func (c FaultCell) Label() string {
	if c.Stack == ISCSI && c.Transport == testbed.TransportTCP {
		return fmt.Sprintf("%s/tcp", c.Stack)
	}
	return fmt.Sprintf("%s/%s", c.Stack, c.Transport)
}

// RunFault sweeps fault families over stacks and transports. Cells come
// out in deterministic order; identical seeds give byte-identical cells
// (the determinism the fault test suite enforces). Invalid pairs (iSCSI
// over UDP) are skipped; a cell that never recovers is reported with
// Collapsed set rather than aborting the sweep.
func RunFault(cfg FaultConfig) ([]FaultCell, error) {
	cfg.fill()
	var cells []FaultCell
	for _, f := range cfg.Families {
		for _, stack := range cfg.Stacks {
			for _, tr := range cfg.Transports {
				if stack == ISCSI && tr == testbed.TransportUDP {
					continue
				}
				cell, err := runFaultCell(cfg, f, stack, tr)
				if err != nil {
					return nil, fmt.Errorf("fault %s/%v(%v): %w", f, stack, tr, err)
				}
				cells = append(cells, cell)
			}
		}
	}
	return cells, nil
}

// runFaultCell builds one cluster and runs one fault plan against it.
// The whole cell — working-set setup, fault timeline, recovery — sits
// between the cell's begin/end marks; the end mark carries the recovery
// measurements (or collapsed=1).
func runFaultCell(cfg FaultConfig, f fault.Family, stack Stack, tr testbed.Transport) (FaultCell, error) {
	axes := FaultCell{Family: f, Stack: stack, Transport: tr, Clients: cfg.Clients}
	conns := 1
	if stack == ISCSI && tr == testbed.TransportTCP {
		conns = cfg.Conns
	}
	tags := metrics.Tags{
		"family":  string(f),
		"clients": itoa(cfg.Clients),
		"conns":   itoa(conns),
	}
	var mon *health.Monitor
	if cfg.Health != nil {
		var err error
		if mon, err = health.New(*cfg.Health); err != nil {
			return FaultCell{}, err
		}
	}
	cl, err := testbed.NewCluster(testbed.ClusterConfig{
		Kind:         stack,
		Clients:      cfg.Clients,
		DeviceBlocks: cfg.DeviceBlocks,
		Seed:         cfg.Seed,
		Transport:    tr,
		Conns:        conns,
		WindowBytes:  cfg.WindowBytes,
		Metrics:      cellRecorder(cfg.Metrics, "fault", stack, tags),
		Tracer:       cfg.Tracer,
		Health:       mon,
	})
	if err != nil {
		if errors.Is(err, simnet.ErrTransportBroken) {
			axes.Collapsed = true
			return axes, nil
		}
		return FaultCell{}, err
	}
	plan, err := fault.NewPlan(f, fault.PlanConfig{
		Warmup: cfg.Warmup,
		Outage: cfg.Outage,
		Flaps:  cfg.Flaps,
		Victim: cfg.Victim,
		Seed:   cfg.Seed,
	})
	if err != nil {
		return FaultCell{}, err
	}

	beginClusterCell(cl, nil)
	res, err := fault.Run(cl, fault.Config{Plan: plan})
	if err != nil {
		if errors.Is(err, simnet.ErrTransportBroken) {
			endClusterCell(cl, nil, map[string]float64{"collapsed": 1})
			axes.Collapsed = true
			return axes, nil
		}
		return FaultCell{}, err
	}

	cell := axes
	cell.Inject, cell.Healed, cell.Recovered, cell.TTR = res.Inject, res.Healed, res.Recovered, res.TTR
	cell.PreRate, cell.DegradedRate, cell.PostRate = res.PreRate, res.DegradedRate, res.PostRate
	cell.PreOps, cell.DegradedOps, cell.PostOps = res.PreOps, res.DegradedOps, res.PostOps
	cell.FailedOps, cell.LostOps = res.FailedOps, res.LostOps
	cell.RebuildBlocks, cell.Retransmits, cell.Dropped = res.RebuildBlocks, res.Retransmits, res.Dropped
	cell.Collapsed = res.Collapsed
	if cell.Collapsed {
		endClusterCell(cl, nil, map[string]float64{"collapsed": 1})
		return cell, nil
	}
	endClusterCell(cl, nil, map[string]float64{
		"ttr_ns":               float64(cell.TTR),
		"inject_ns":            float64(cell.Inject),
		"recovered_ns":         float64(cell.Recovered),
		"pre_ops_per_sec":      cell.PreRate,
		"degraded_ops_per_sec": cell.DegradedRate,
		"post_ops_per_sec":     cell.PostRate,
		"degraded_ops":         float64(cell.DegradedOps),
		"failed_ops":           float64(cell.FailedOps),
		"lost_ops":             float64(cell.LostOps),
		"rebuild_blocks":       float64(cell.RebuildBlocks),
		"retransmits":          float64(cell.Retransmits),
		"dropped_frames":       float64(cell.Dropped),
	})
	return cell, nil
}

// RenderFault prints the sweep: one panel per fault family, one row
// group per stack/transport variant.
func RenderFault(w io.Writer, cells []FaultCell) {
	var families []fault.Family
	seenF := map[fault.Family]bool{}
	var labels []string
	seenL := map[string]bool{}
	byCell := map[fault.Family]map[string]FaultCell{}
	for _, c := range cells {
		if !seenF[c.Family] {
			seenF[c.Family] = true
			families = append(families, c.Family)
			byCell[c.Family] = map[string]FaultCell{}
		}
		if l := c.Label(); !seenL[l] {
			seenL[l] = true
			labels = append(labels, l)
		}
		byCell[c.Family][c.Label()] = c
	}
	for _, f := range families {
		fmt.Fprintf(w, "fault: %s\n", f)
		fmt.Fprintf(w, "%-16s %10s %10s %10s %10s %7s %7s %9s\n",
			"stack", "ttr", "pre/s", "degr/s", "post/s", "failed", "lost", "recovery")
		for _, l := range labels {
			c, ok := byCell[f][l]
			if !ok {
				continue
			}
			if c.Collapsed {
				fmt.Fprintf(w, "%-16s %10s\n", l, "collapse")
				continue
			}
			extra := ""
			switch f {
			case fault.DiskFail:
				extra = fmt.Sprintf("rebuild=%d blk", c.RebuildBlocks)
			case fault.LinkFlap:
				extra = fmt.Sprintf("drops=%d", c.Dropped)
			default:
				extra = fmt.Sprintf("retrans=%d", c.Retransmits)
			}
			fmt.Fprintf(w, "%-16s %10s %10.1f %10.1f %10.1f %7d %7d %9s  %s\n",
				l, c.TTR.Round(time.Millisecond), c.PreRate, c.DegradedRate,
				c.PostRate, c.FailedOps, c.LostOps,
				(c.Recovered - c.Healed).Round(time.Millisecond), extra)
		}
		fmt.Fprintln(w)
	}
}
