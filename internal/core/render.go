package core

import (
	"fmt"
	"io"
	"time"

	"repro/internal/testbed"
)

// Renderers print results in the paper's table/figure layouts.

// RenderSyscallTable prints Table 2 or Table 3.
func RenderSyscallTable(w io.Writer, title string, rows []SyscallRow) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-10s | %-27s | %-27s\n", "", "Directory depth 0", "Directory depth 3")
	fmt.Fprintf(w, "%-10s | %5s %5s %5s %6s | %5s %5s %5s %6s\n",
		"op", "v2", "v3", "v4", "iSCSI", "v2", "v3", "v4", "iSCSI")
	line := "-----------+-----------------------------+----------------------------"
	fmt.Fprintln(w, line)
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s | %5d %5d %5d %6d | %5d %5d %5d %6d\n", r.Op,
			r.Depth0[NFSv2], r.Depth0[NFSv3], r.Depth0[NFSv4], r.Depth0[ISCSI],
			r.Depth3[NFSv2], r.Depth3[NFSv3], r.Depth3[NFSv4], r.Depth3[ISCSI])
	}
}

// RenderFigure3 prints the batching curves as per-op rows across batch
// sizes.
func RenderFigure3(w io.Writer, series []BatchSeries) {
	fmt.Fprintln(w, "Figure 3: iSCSI meta-data update aggregation (amortized msgs/op)")
	if len(series) == 0 {
		return
	}
	fmt.Fprintf(w, "%-8s", "op")
	for _, p := range series[0].Points {
		fmt.Fprintf(w, " %7d", p.Batch)
	}
	fmt.Fprintln(w)
	for _, s := range series {
		fmt.Fprintf(w, "%-8s", s.Op)
		for _, p := range s.Points {
			fmt.Fprintf(w, " %7.2f", p.PerOpMsgs)
		}
		fmt.Fprintln(w)
	}
}

// RenderFigure4 prints depth-sensitivity series.
func RenderFigure4(w io.Writer, series []DepthSeries) {
	fmt.Fprintln(w, "Figure 4: effect of directory depth on message overhead")
	for _, s := range series {
		mode := "cold"
		if s.Warm {
			mode = "warm"
		}
		fmt.Fprintf(w, "[%s, %s]\n", s.Op, mode)
		fmt.Fprintf(w, "%-6s %6s %6s %6s %6s\n", "depth", "v2", "v3", "v4", "iSCSI")
		for _, p := range s.Points {
			fmt.Fprintf(w, "%-6d %6d %6d %6d %6d\n", p.Depth,
				p.Messages[NFSv2], p.Messages[NFSv3], p.Messages[NFSv4], p.Messages[ISCSI])
		}
	}
}

// RenderFigure5 prints size-sensitivity series.
func RenderFigure5(w io.Writer, series []SizeSeries) {
	fmt.Fprintln(w, "Figure 5: message overheads of reads/writes by request size")
	for _, s := range series {
		fmt.Fprintf(w, "[%s]\n", s.Panel)
		fmt.Fprintf(w, "%-8s %6s %6s %6s %6s\n", "size", "v2", "v3", "v4", "iSCSI")
		for _, p := range s.Points {
			fmt.Fprintf(w, "%-8s %6d %6d %6d %6d\n", byteSize(p.Size),
				p.Messages[NFSv2], p.Messages[NFSv3], p.Messages[NFSv4], p.Messages[ISCSI])
		}
	}
}

// RenderTable4 prints the sequential/random I/O comparison.
func RenderTable4(w io.Writer, rows []Table4Row) {
	fmt.Fprintln(w, "Table 4: sequential and random reads/writes")
	fmt.Fprintf(w, "%-18s | %10s %10s | %9s %9s | %9s %9s\n",
		"", "NFSv3 time", "iSCSI time", "NFS msgs", "iSCSI msg", "NFS MB", "iSCSI MB")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s | %10s %10s | %9d %9d | %9.0f %9.0f\n", r.Workload,
			r.NFS.Elapsed.Round(10*time.Millisecond), r.ISCSI.Elapsed.Round(10*time.Millisecond),
			r.NFS.Messages, r.ISCSI.Messages,
			float64(r.NFS.Bytes)/(1<<20), float64(r.ISCSI.Bytes)/(1<<20))
	}
}

// RenderFigure6 prints the latency sweep.
func RenderFigure6(w io.Writer, points []LatencyPoint) {
	fmt.Fprintln(w, "Figure 6: impact of network latency on completion time (seconds)")
	fmt.Fprintf(w, "%-8s | %-31s | %-31s\n", "", "NFS v3", "iSCSI")
	fmt.Fprintf(w, "%-8s | %7s %7s %7s %7s | %7s %7s %7s %7s\n", "RTT",
		"seq-rd", "rnd-rd", "seq-wr", "rnd-wr", "seq-rd", "rnd-rd", "seq-wr", "rnd-wr")
	for _, p := range points {
		n := p.Seconds[NFSv3]
		i := p.Seconds[ISCSI]
		fmt.Fprintf(w, "%-8v | %7.1f %7.1f %7.1f %7.1f | %7.1f %7.1f %7.1f %7.1f\n", p.RTT,
			n["seq-read"], n["rand-read"], n["seq-write"], n["rand-write"],
			i["seq-read"], i["rand-read"], i["seq-write"], i["rand-write"])
	}
}

// RenderTable5 prints PostMark results.
func RenderTable5(w io.Writer, rows []Table5Row) {
	fmt.Fprintln(w, "Table 5: PostMark completion times and message counts")
	fmt.Fprintf(w, "%-8s | %10s %10s | %10s %10s\n",
		"files", "NFSv3 time", "iSCSI time", "NFS msgs", "iSCSI msgs")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8d | %10s %10s | %10d %10d\n", r.Files,
			r.NFS.Elapsed.Round(10*time.Millisecond), r.ISCSI.Elapsed.Round(10*time.Millisecond),
			r.NFS.Messages, r.ISCSI.Messages)
	}
}

// RenderTPC prints a Table 6/7 row.
func RenderTPC(w io.Writer, r TPCRow, unit string) {
	fmt.Fprintf(w, "%s: normalized throughput NFSv3=1.00 iSCSI=%.2f (%s); messages NFS=%d iSCSI=%d\n",
		r.Benchmark, r.Normalized, unit, r.NFS.Messages, r.ISCSI.Messages)
}

// RenderTable8 prints the shell benchmarks.
func RenderTable8(w io.Writer, rows []Table8Row) {
	fmt.Fprintln(w, "Table 8: completion times for other benchmarks")
	fmt.Fprintf(w, "%-16s | %12s %12s\n", "benchmark", "NFS v3", "iSCSI")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s | %12s %12s\n", r.Benchmark,
			r.NFS.Elapsed.Round(10*time.Millisecond), r.ISCSI.Elapsed.Round(10*time.Millisecond))
	}
}

// RenderCPUTables prints Tables 9 and 10.
func RenderCPUTables(w io.Writer, rows []CPURow) {
	fmt.Fprintln(w, "Table 9: server CPU utilization (95th percentile)")
	fmt.Fprintf(w, "%-10s | %8s %8s\n", "", "NFS v3", "iSCSI")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s | %7.0f%% %7.0f%%\n", r.Benchmark, r.NFSServer*100, r.ISCSIServer*100)
	}
	fmt.Fprintln(w, "Table 10: client CPU utilization (95th percentile)")
	fmt.Fprintf(w, "%-10s | %8s %8s\n", "", "NFS v3", "iSCSI")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s | %7.0f%% %7.0f%%\n", r.Benchmark, r.NFSClient*100, r.ISCSIClient*100)
	}
}

func byteSize(n int) string {
	if n >= 1<<10 && n%(1<<10) == 0 {
		return fmt.Sprintf("%dKB", n>>10)
	}
	return fmt.Sprintf("%dB", n)
}

// StacksHeader names the four stacks in table order (for custom output).
func StacksHeader() []string {
	out := make([]string, 0, len(testbed.AllKinds))
	for _, k := range testbed.AllKinds {
		out = append(out, k.String())
	}
	return out
}
