package core

import (
	"fmt"
	"io"
	"time"

	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/testbed"
	"repro/internal/tracing"
	"repro/internal/workload"
)

// Scaling experiment: the cluster extension of the paper's single-client
// comparison. N concurrent clients drive one server (shared Gigabit
// segment, shared server CPU, shared RAID-5 array) and we record how
// aggregate throughput, per-client latency and server CPU utilization
// move as the client count grows — the production-relevant view of the
// paper's Section 4/5 contrasts.

// ScaleWorkloads lists the supported scaling workloads.
var ScaleWorkloads = []string{"seq-write", "seq-read", "rand-read", "rand-write", "postmark"}

// ScaleConfig parameterizes the scaling sweep.
type ScaleConfig struct {
	// Counts are the cluster sizes to sweep (default 1,2,4,8,16).
	Counts []int
	// Workloads to run (default seq-write, rand-read, postmark).
	Workloads []string
	// Stacks restricts the sweep (default all four).
	Stacks []Stack
	// FileSize is the per-client file size for the seq/rand workloads
	// (default 4 MB).
	FileSize int64
	// ChunkSize is the per-op transfer unit (default 4 KB).
	ChunkSize int
	// PostMarkFiles / PostMarkTransactions size each client's PostMark
	// run (default 50 files, 250 transactions).
	PostMarkFiles        int
	PostMarkTransactions int
	// DeviceBlocks is the per-client volume size in 4 KB blocks
	// (default 16384 = 64 MB; the NFS export is scaled by client count).
	DeviceBlocks int64
	// Seed for workload randomness.
	Seed int64
	// Foreground, when positive, switches counts above it to hybrid
	// cells: Foreground clients stay fully mechanistic and the remainder
	// run as a fluid background cohort whose demand is calibrated from a
	// one-client mechanistic run of the same (workload, stack). This is
	// what makes 10,000-client sweeps complete in seconds. 0 keeps every
	// cell purely mechanistic.
	Foreground int
	// Metrics, when non-nil, receives per-cell telemetry tagged with the
	// sweep axes (see docs/METRICS.md).
	Metrics *metrics.Recorder
	// Tracer, when non-nil, records per-op span trees for every measured
	// cell (calibration runs stay untraced; see docs/TRACING.md).
	Tracer *tracing.Tracer
}

func (c *ScaleConfig) fill() {
	if len(c.Counts) == 0 {
		c.Counts = []int{1, 2, 4, 8, 16}
	}
	if len(c.Workloads) == 0 {
		c.Workloads = []string{"seq-write", "rand-read", "postmark"}
	}
	if len(c.Stacks) == 0 {
		c.Stacks = testbed.AllKinds
	}
	if c.FileSize == 0 {
		c.FileSize = 4 << 20
	}
	if c.ChunkSize == 0 {
		c.ChunkSize = 4096
	}
	if c.PostMarkFiles == 0 {
		c.PostMarkFiles = 50
	}
	if c.PostMarkTransactions == 0 {
		c.PostMarkTransactions = 250
	}
	if c.DeviceBlocks == 0 {
		c.DeviceBlocks = 16384
		// Grow the per-client volume with the working set: the file (or
		// PostMark pool at its maximum ~10 KB per file) plus 2x slack
		// for journal, metadata and layout overhead.
		working := c.FileSize
		if pool := int64(c.PostMarkFiles+c.PostMarkTransactions) * 10000; pool > working {
			working = pool
		}
		if need := working / 4096 * 2; need > c.DeviceBlocks {
			c.DeviceBlocks = need
		}
	}
}

// ScaleCell is one (workload, stack, client-count) measurement.
type ScaleCell struct {
	Workload string
	Stack    Stack
	Clients  int
	// Background is the fluid client count inside Clients (0 when the
	// cell ran purely mechanistically).
	Background int

	// Elapsed is the cluster-wide measured window (run + drain).
	Elapsed time.Duration
	// AggBytesPerSec is aggregate data throughput (seq/rand workloads).
	AggBytesPerSec float64
	// AggOpsPerSec is aggregate syscall throughput.
	AggOpsPerSec float64
	// PerClientLatency is the mean per-syscall latency across clients
	// during the run phase (drain excluded).
	PerClientLatency time.Duration
	// ServerCPU is mean server CPU utilization over the window.
	ServerCPU float64
	// Messages is the protocol transaction count over the window.
	Messages int64
}

// RunScaling sweeps client counts for every stack and workload.
func RunScaling(cfg ScaleConfig) ([]ScaleCell, error) {
	cfg.fill()
	if cfg.Foreground < 0 {
		return nil, fmt.Errorf("scale: negative foreground count %d", cfg.Foreground)
	}
	cal := calibration{}
	var cells []ScaleCell
	for _, wl := range cfg.Workloads {
		for _, stack := range cfg.Stacks {
			for _, n := range cfg.Counts {
				cell, err := runScaleCell(cfg, wl, stack, n, cal)
				if err != nil {
					return nil, fmt.Errorf("scale %s/%v/%d: %w", wl, stack, n, err)
				}
				cells = append(cells, cell)
			}
		}
	}
	return cells, nil
}

// maxExportScale caps the shared-export population multiplier: the
// simulated ext3's one-GDT-block geometry tops out near 128 default
// volumes, and it matches the mechanistic client ceiling — like the
// fixed-size export on the paper's testbed, fleets beyond it share the
// largest expressible disk layout.
const maxExportScale = 128

// exportBlocks sizes a cell's volume: iSCSI LUNs stay per-client (the
// array itself is sized by CapacityClients), while one shared NFS export
// must hold every client's working set, clamped at maxExportScale.
func exportBlocks(dev int64, stack Stack, n int) int64 {
	if stack == ISCSI {
		return dev
	}
	if n > maxExportScale {
		n = maxExportScale
	}
	return dev * int64(n)
}

// calibration caches the per-(workload, stack) fluid demand derived from a
// one-client mechanistic run, so a sweep calibrates each column once no
// matter how many hybrid counts it visits.
type calibration map[string]fleet.Demand

// demand returns the cached calibrated demand for a target population of
// n clients, running the one-client measurement on a miss. The
// calibration cluster's storage is sized for the full population so the
// measured client pays the same seek distances the target cell's clients
// will.
func (cal calibration) demand(cfg ScaleConfig, wl string, stack Stack, n int) (fleet.Demand, error) {
	key := fmt.Sprintf("%s|%s|%d", wl, stack, n)
	if d, ok := cal[key]; ok {
		return d, nil
	}
	cl, err := testbed.NewCluster(testbed.ClusterConfig{
		Kind:            stack,
		Clients:         1,
		DeviceBlocks:    exportBlocks(cfg.DeviceBlocks, stack, n),
		Seed:            cfg.Seed,
		CapacityClients: n,
	})
	if err != nil {
		return fleet.Demand{}, fmt.Errorf("calibrate: %w", err)
	}
	drivers, aggBytes, err := scaleDrivers(cl, cfg, wl)
	if err != nil {
		return fleet.Demand{}, fmt.Errorf("calibrate: %w", err)
	}
	before := cl.Snap()
	beforeDisk := cl.DiskBusy()
	startOps := cl.Clients[0].Ops()
	if err := cl.Run(drivers); err != nil {
		return fleet.Demand{}, fmt.Errorf("calibrate: %w", err)
	}
	if err := cl.Drain(); err != nil {
		return fleet.Demand{}, fmt.Errorf("calibrate: %w", err)
	}
	after := cl.Snap()
	d := cl.Since(before)
	m := fleet.Measured{
		Elapsed:       d.Elapsed,
		Ops:           cl.Clients[0].Ops() - startOps,
		ServerCPUBusy: d.ServerBusy,
		DiskBusy:      cl.DiskBusy() - beforeDisk,
		UpBytes:       after.Net.BytesSent - before.Net.BytesSent,
		DownBytes:     after.Net.BytesRecv - before.Net.BytesRecv,
		Messages:      d.Messages,
		DataBytes:     aggBytes,
	}
	// The homogeneous cluster multiplexes every client over one segment,
	// so the wire is a shared station calibrated at segment bandwidth.
	dem, err := fleet.Calibrate(m, cl.Net.Bandwidth())
	if err != nil {
		return fleet.Demand{}, fmt.Errorf("calibrate: %w", err)
	}
	cal[key] = dem
	return dem, nil
}

// clientDir returns client i's private directory.
func clientDir(i int) string { return fmt.Sprintf("/c%d", i) }

// scaleDrivers runs the unmeasured setup (per-client directories, file
// layout and a cluster-wide cold cache for the read workloads) and builds
// the measured drivers for every mechanistic client. aggBytes is the
// nominal data volume the drivers will move (0 for postmark).
func scaleDrivers(cl *testbed.Cluster, cfg ScaleConfig, wl string) ([]func() (bool, error), int64, error) {
	src := workload.SeqRandConfig{FileSize: cfg.FileSize, ChunkSize: cfg.ChunkSize}
	k := len(cl.Clients)
	for i, c := range cl.Clients {
		if err := c.Mkdir(clientDir(i)); err != nil {
			return nil, 0, err
		}
	}
	if wl == "seq-read" || wl == "rand-read" {
		prep := make([]func() (bool, error), k)
		for i, c := range cl.Clients {
			pc := src
			pc.Seed = cfg.Seed + int64(i)
			prep[i] = workload.PrepareFileSteps(c, clientDir(i)+"/f", pc)
		}
		if err := cl.Run(prep); err != nil {
			return nil, 0, err
		}
		if err := cl.ColdCache(); err != nil {
			return nil, 0, err
		}
	}
	cl.Align()

	drivers := make([]func() (bool, error), k)
	var aggBytes int64
	for i, c := range cl.Clients {
		pc := src
		pc.Seed = cfg.Seed + int64(i)
		path := clientDir(i) + "/f"
		switch wl {
		case "seq-write":
			drivers[i] = workload.SequentialWriteSteps(c, path, pc)
			aggBytes += pc.SeqBytes()
		case "rand-write":
			drivers[i] = workload.RandomWriteSteps(c, path, pc)
			aggBytes += pc.RandBytes()
		case "seq-read":
			drivers[i] = workload.SequentialReadSteps(c, path, pc)
			aggBytes += pc.SeqBytes()
		case "rand-read":
			drivers[i] = workload.RandomReadSteps(c, path, pc)
			aggBytes += pc.RandBytes()
		case "postmark":
			pm := workload.PostMarkConfig{
				Files:        cfg.PostMarkFiles,
				Transactions: cfg.PostMarkTransactions,
				MinSize:      500,
				MaxSize:      10000,
				Seed:         cfg.Seed + 42 + int64(i),
				Dir:          clientDir(i) + "/pm",
			}
			steps, _, err := workload.PostMarkSteps(c, pm)
			if err != nil {
				return nil, 0, err
			}
			drivers[i] = steps
		default:
			return nil, 0, fmt.Errorf("unknown scaling workload %q", wl)
		}
	}
	return drivers, aggBytes, nil
}

// runScaleCell builds one cluster and measures one workload on it. Counts
// above cfg.Foreground (when set) run hybrid: Foreground mechanistic
// clients against a calibrated fluid background cohort covering the rest,
// with the cell's aggregates synthesized from both halves.
func runScaleCell(cfg ScaleConfig, wl string, stack Stack, n int, cal calibration) (ScaleCell, error) {
	k := n
	var cohorts []fleet.Cohort
	cellTags := metrics.Tags{"workload": wl, "clients": itoa(n)}
	if cfg.Foreground > 0 && n > cfg.Foreground {
		k = cfg.Foreground
		dem, err := cal.demand(cfg, wl, stack, n)
		if err != nil {
			return ScaleCell{}, err
		}
		cohorts = []fleet.Cohort{{Clients: n - k, Demand: dem}}
		cellTags["background"] = itoa(n - k)
	}
	cl, err := testbed.NewCluster(testbed.ClusterConfig{
		Kind:            stack,
		Clients:         k,
		DeviceBlocks:    exportBlocks(cfg.DeviceBlocks, stack, n),
		Seed:            cfg.Seed,
		Background:      cohorts,
		CapacityClients: n,
		Metrics:         cellRecorder(cfg.Metrics, "scale", stack, cellTags),
		Tracer:          cfg.Tracer,
	})
	if err != nil {
		return ScaleCell{}, err
	}

	drivers, aggBytes, err := scaleDrivers(cl, cfg, wl)
	if err != nil {
		return ScaleCell{}, err
	}

	// Measured window: interleaved run, then drain to quiescence.
	beginClusterCell(cl, nil)
	before := cl.Snap()
	startOps := make([]int64, k)
	startT := make([]time.Duration, k)
	for i, c := range cl.Clients {
		startOps[i] = c.Ops()
		startT[i] = c.Clock.Now()
	}
	if err := cl.Run(drivers); err != nil {
		return ScaleCell{}, err
	}
	var latSum time.Duration
	var totalOps int64
	for i, c := range cl.Clients {
		ops := c.Ops() - startOps[i]
		totalOps += ops
		if ops > 0 {
			latSum += (c.Clock.Now() - startT[i]) / time.Duration(ops)
		}
	}
	if err := cl.Drain(); err != nil {
		return ScaleCell{}, err
	}
	d := cl.Since(before)
	elapsed := d.Elapsed
	if elapsed <= 0 {
		elapsed = time.Millisecond
	}
	secs := elapsed.Seconds()
	cell := ScaleCell{
		Workload:         wl,
		Stack:            stack,
		Clients:          n,
		Elapsed:          elapsed,
		AggBytesPerSec:   float64(aggBytes) / secs,
		AggOpsPerSec:     float64(totalOps) / secs,
		PerClientLatency: latSum / time.Duration(k),
		ServerCPU:        float64(d.ServerBusy) / float64(elapsed),
		Messages:         d.Messages,
	}
	if op := cl.Fluid(); op != nil {
		// The fleet is homogeneous, so the k mechanistic clients — running
		// against the injected background load — are a sample of the full
		// population: per-client figures (latency) carry over directly and
		// aggregate rates scale by population over sample. The solved
		// operating point's job was setting the injected utilizations; the
		// reported numbers come from the measured sample. Server CPU adds
		// the background share on top of the capacity the foreground left:
		// utilization = fg + rho*(1-fg) under processor sharing.
		scale := float64(n) / float64(k)
		cell.Background = op.Background
		cell.AggOpsPerSec *= scale
		cell.AggBytesPerSec *= scale
		cell.Messages = int64(float64(cell.Messages) * scale)
		rho := op.BackgroundUtil[fleet.StationCPU]
		cell.ServerCPU = cell.ServerCPU + rho*(1-cell.ServerCPU)
	}
	endClusterCell(cl, nil, map[string]float64{
		"elapsed_ns":            float64(cell.Elapsed),
		"agg_bytes_per_sec":     cell.AggBytesPerSec,
		"agg_ops_per_sec":       cell.AggOpsPerSec,
		"per_client_latency_ns": float64(cell.PerClientLatency),
		"server_cpu":            cell.ServerCPU,
		"messages":              float64(cell.Messages),
	})
	return cell, nil
}

// RenderScaling prints the sweep grouped by workload: one row block per
// metric, stacks as rows, client counts as columns.
func RenderScaling(w io.Writer, cells []ScaleCell) {
	// Preserve encounter order of workloads and counts.
	var workloads []string
	var counts []int
	seenW := map[string]bool{}
	seenC := map[int]bool{}
	cell := map[string]map[Stack]map[int]ScaleCell{}
	for _, c := range cells {
		if !seenW[c.Workload] {
			seenW[c.Workload] = true
			workloads = append(workloads, c.Workload)
			cell[c.Workload] = map[Stack]map[int]ScaleCell{}
		}
		if !seenC[c.Clients] {
			seenC[c.Clients] = true
			counts = append(counts, c.Clients)
		}
		if cell[c.Workload][c.Stack] == nil {
			cell[c.Workload][c.Stack] = map[int]ScaleCell{}
		}
		cell[c.Workload][c.Stack][c.Clients] = c
	}

	row := func(byCount map[int]ScaleCell, f func(ScaleCell) string) string {
		out := ""
		for _, n := range counts {
			c, ok := byCount[n]
			if !ok {
				out += fmt.Sprintf(" %9s", "-")
				continue
			}
			out += fmt.Sprintf(" %9s", f(c))
		}
		return out
	}

	for _, wl := range workloads {
		fmt.Fprintf(w, "Scaling: %s (clients sharing one server)\n", wl)
		fmt.Fprintf(w, "%-22s", "clients")
		for _, n := range counts {
			fmt.Fprintf(w, " %9d", n)
		}
		fmt.Fprintln(w)
		for _, stack := range testbed.AllKinds {
			byCount := cell[wl][stack]
			if byCount == nil {
				continue
			}
			if wl == "postmark" {
				fmt.Fprintf(w, "%-22s%s\n", stack.String()+" kops/s",
					row(byCount, func(c ScaleCell) string {
						return fmt.Sprintf("%.1f", c.AggOpsPerSec/1000)
					}))
			} else {
				fmt.Fprintf(w, "%-22s%s\n", stack.String()+" MB/s",
					row(byCount, func(c ScaleCell) string {
						return fmt.Sprintf("%.1f", c.AggBytesPerSec/1e6)
					}))
			}
			fmt.Fprintf(w, "%-22s%s\n", "  per-op latency",
				row(byCount, func(c ScaleCell) string {
					return c.PerClientLatency.Round(time.Microsecond).String()
				}))
			fmt.Fprintf(w, "%-22s%s\n", "  server CPU",
				row(byCount, func(c ScaleCell) string {
					return fmt.Sprintf("%.0f%%", c.ServerCPU*100)
				}))
		}
		fmt.Fprintln(w)
	}
}
