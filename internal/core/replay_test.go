package core

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/testbed"
	"repro/internal/trace"
)

// TestRenderReplaySnapshot pins the replay table layout byte for byte.
func TestRenderReplaySnapshot(t *testing.T) {
	cells := []ReplayCell{
		{
			Profile: "eecs", Stack: NFSv3, Transport: testbed.TransportFluid, Conns: 1,
			Clients: 4, Ops: 2000, Elapsed: 2 * time.Second,
			P50: 150 * time.Microsecond, P90: 420 * time.Microsecond,
			P99: 1100 * time.Microsecond, Mean: 210 * time.Microsecond,
			SlowestClientMean: 260 * time.Microsecond, OpsPerSec: 1000,
		},
		{
			Profile: "eecs", Stack: ISCSI, Transport: testbed.TransportTCP, Conns: 2,
			Clients: 4, Ops: 2000, Elapsed: 2 * time.Second,
			P50: 90 * time.Microsecond, P90: 200 * time.Microsecond,
			P99: 640 * time.Microsecond, Mean: 120 * time.Microsecond,
			SlowestClientMean: 150 * time.Microsecond, OpsPerSec: 1000,
		},
	}
	var buf bytes.Buffer
	RenderReplay(&buf, cells)
	want := "Trace replay: eecs (open-loop, 4 clients, 2000 ops)\n" +
		"variant                  p50       p90       p99      mean   slowest      ops/s\n" +
		"NFS v3/fluid           150µs     420µs     1.1ms     210µs     260µs     1000.0\n" +
		"iSCSI/tcp x2            90µs     200µs     640µs     120µs     150µs     1000.0\n" +
		"\n"
	if got := buf.String(); got != want {
		t.Fatalf("render mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestRunReplaySmall runs a tiny end-to-end sweep and sanity-checks cell
// shape: ops replayed, ordered percentiles, positive throughput.
func TestRunReplaySmall(t *testing.T) {
	maxOps := 120
	if testing.Short() {
		maxOps = 50
	}
	cells, err := RunReplay(ReplayConfig{
		Profiles:     []string{"eecs"},
		Stacks:       []Stack{NFSv3, ISCSI},
		Transports:   []testbed.Transport{testbed.TransportFluid},
		Clients:      2,
		MaxOps:       maxOps,
		DirMod:       16,
		DeviceBlocks: 8192,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(cells))
	}
	for _, c := range cells {
		if c.Ops != maxOps {
			t.Errorf("%s: replayed %d ops, want %d", c.Label(), c.Ops, maxOps)
		}
		if c.P50 > c.P90 || c.P90 > c.P99 {
			t.Errorf("%s: percentiles out of order: %v %v %v", c.Label(), c.P50, c.P90, c.P99)
		}
		if c.P99 <= 0 || c.OpsPerSec <= 0 || c.Elapsed <= 0 {
			t.Errorf("%s: degenerate cell %+v", c.Label(), c)
		}
	}
}

// TestRunReplayFromRecords drives the sweep from an explicit op log (the
// JSONL path): records fold onto the cluster and the block is labeled.
func TestRunReplayFromRecords(t *testing.T) {
	var recs []trace.Record
	for i := 0; i < 40; i++ {
		kind := trace.OpRead
		if i%4 == 0 {
			kind = trace.OpWrite
		}
		recs = append(recs, trace.Record{
			At: time.Duration(i) * 5 * time.Millisecond, Client: i % 3, Dir: i % 8, Kind: kind,
		})
	}
	cells, err := RunReplay(ReplayConfig{
		Records:      recs,
		RecordsName:  "synthetic",
		Stacks:       []Stack{NFSv3},
		Transports:   []testbed.Transport{testbed.TransportFluid},
		Clients:      3,
		MaxOps:       -1, // negative = no truncation
		DeviceBlocks: 8192,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0].Profile != "synthetic" || cells[0].Ops != len(recs) {
		t.Fatalf("unexpected cells: %+v", cells)
	}
}

// TestRunReplaySkipsISCSIOverUDP verifies the sweep drops the impossible
// iSCSI/UDP combination instead of erroring.
func TestRunReplaySkipsISCSIOverUDP(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: covered by TestRunReplaySmall")
	}
	cells, err := RunReplay(ReplayConfig{
		Profiles:     []string{"eecs"},
		Stacks:       []Stack{NFSv3, ISCSI},
		Transports:   []testbed.Transport{testbed.TransportUDP},
		Clients:      2,
		MaxOps:       30,
		DirMod:       8,
		DeviceBlocks: 8192,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0].Stack != NFSv3 {
		t.Fatalf("expected one NFS/udp cell, got %+v", cells)
	}
}
