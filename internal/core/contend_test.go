package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/testbed"
	"repro/internal/tracing"
)

// TestContendSweepShape runs all three contention workloads on an NFS
// and an iSCSI stack and checks the acceptance bar: every cell makes
// progress, exclusive-lock workloads show real contention (denied
// polls on NFS, reservation conflicts on iSCSI), and the rendered table
// names every workload.
func TestContendSweepShape(t *testing.T) {
	cfg := ContendConfig{
		Stacks:     []Stack{NFSv3, ISCSI},
		Transports: []testbed.Transport{testbed.TransportFluid},
		Clients:    3,
		Iters:      20,
		Seed:       5,
	}
	cells, err := RunContention(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(ContendWorkloads) * 2; len(cells) != want {
		t.Fatalf("%d cells, want %d", len(cells), want)
	}
	for _, c := range cells {
		name := c.Workload + "/" + c.Label()
		if c.Ops != int64(cfg.Iters)*int64(cfg.Clients) {
			t.Errorf("%s: ops=%d want %d", name, c.Ops, int64(cfg.Iters)*int64(cfg.Clients))
		}
		if c.Rate <= 0 || c.Elapsed <= 0 {
			t.Errorf("%s: no progress: rate=%.1f elapsed=%v", name, c.Rate, c.Elapsed)
		}
		if c.Grants <= 0 {
			t.Errorf("%s: no lock grants", name)
		}
		// Multiple writers on one lock must actually collide.
		if c.Workload != ContendRW && c.Denials == 0 {
			t.Errorf("%s: exclusive contention produced no denials", name)
		}
		if c.Workload != ContendRW && c.WaitTotal == 0 {
			t.Errorf("%s: denied clients accumulated no wait", name)
		}
	}

	var buf bytes.Buffer
	RenderContention(&buf, cells)
	out := buf.String()
	for _, wl := range ContendWorkloads {
		if !strings.Contains(out, wl) {
			t.Errorf("render omits workload %s:\n%s", wl, out)
		}
	}
}

// TestContendShareAsymmetry pins the protocol asymmetry the sweep
// exists to show: in the reader/writer workload NFS readers pay a LOCK
// RPC each (shared locks are real), while iSCSI readers lock nothing —
// the only reservation traffic is the writer's.
func TestContendShareAsymmetry(t *testing.T) {
	run := func(stack Stack) ContendCell {
		cells, err := RunContention(ContendConfig{
			Workloads:  []string{ContendRW},
			Stacks:     []Stack{stack},
			Transports: []testbed.Transport{testbed.TransportFluid},
			Clients:    3,
			Iters:      10,
			Seed:       7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return cells[0]
	}
	nfs, scsi := run(NFSv3), run(ISCSI)
	// NFS: writer + 2 readers each lock per iteration = 3 grants/iter.
	if nfs.Grants < 3*10 {
		t.Errorf("nfs reader/writer grants=%d, want >= 30 (shared locks are RPCs)", nfs.Grants)
	}
	// iSCSI: only the writer reserves; readers are local no-ops.
	if scsi.Grants != 10 {
		t.Errorf("iscsi reader/writer reserves=%d, want exactly the writer's 10", scsi.Grants)
	}
}

// TestContendDeterministicStream reruns contention cells and demands
// byte-identical experiment=contend metric streams and span traces. In
// short mode it covers ping-pong on two stacks over the fluid wire; the
// full run covers ping-pong and shared-append across all four stacks
// over fluid and TCP.
func TestContendDeterministicStream(t *testing.T) {
	cfg := ContendConfig{
		Workloads:  []string{ContendPingPong, ContendAppend},
		Transports: []testbed.Transport{testbed.TransportFluid, testbed.TransportTCP},
		Clients:    3,
		Iters:      10,
		Seed:       9,
	}
	if testing.Short() {
		cfg.Workloads = []string{ContendPingPong}
		cfg.Stacks = []Stack{NFSv3, ISCSI}
		cfg.Transports = []testbed.Transport{testbed.TransportFluid}
	}
	run := func() ([]byte, []tracing.Span) {
		var buf bytes.Buffer
		c := cfg
		c.Metrics = metrics.NewRecorder(metrics.NewSink(&buf), metrics.Tags{"cmd": "contend"})
		c.Tracer = tracing.New(tracing.Config{})
		if _, err := RunContention(c); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), c.Tracer.Spans()
	}
	a, aSpans := run()
	b, bSpans := run()
	if !bytes.Equal(a, b) {
		t.Fatalf("contend telemetry not deterministic: %d vs %d bytes", len(a), len(b))
	}
	if !bytes.Contains(a, []byte(`"experiment":"contend"`)) {
		t.Fatalf("stream missing experiment=contend tag")
	}
	if !bytes.Contains(a, []byte(`"subsys":"lock"`)) {
		t.Fatalf("stream missing subsys=lock samples")
	}
	if len(aSpans) == 0 || len(aSpans) != len(bSpans) {
		t.Fatalf("trace not deterministic: %d vs %d spans", len(aSpans), len(bSpans))
	}
	for i := range aSpans {
		as, bs := aSpans[i], bSpans[i]
		if as.Layer != bs.Layer || as.Op != bs.Op || as.Start != bs.Start || as.End != bs.End {
			t.Fatalf("span %d differs: %+v vs %+v", i, as, bs)
		}
	}
	var lockSpans int
	for _, s := range aSpans {
		if s.Layer == tracing.LayerLock {
			lockSpans++
		}
	}
	if lockSpans == 0 {
		t.Fatalf("no %s-layer spans recorded", tracing.LayerLock)
	}
}
