package core

import (
	"bytes"
	"testing"
)

// small options for test speed
func testOpts() Options { return Options{DeviceBlocks: 65536} }

// TestTable2Shapes verifies the central Table 2 relationships on a few
// representative operations.
func TestTable2Shapes(t *testing.T) {
	for _, name := range []string{"mkdir", "chdir", "stat"} {
		op, err := FindMicroOp(name)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[Stack]int64{}
		for _, s := range []Stack{NFSv2, NFSv3, NFSv4, ISCSI} {
			n, err := MicroCount(testOpts(), op, 0, s, false)
			if err != nil {
				t.Fatalf("%s on %v: %v", name, s, err)
			}
			counts[s] = n
		}
		t.Logf("%s cold d0: v2=%d v3=%d v4=%d iscsi=%d", name,
			counts[NFSv2], counts[NFSv3], counts[NFSv4], counts[ISCSI])
		// On a freshly-formatted volume small-file inodes can share the
		// root's inode-table block, shaving a transaction off iSCSI's
		// cold cost; allow one message of slack on that comparison.
		if counts[ISCSI]+1 < counts[NFSv2] {
			t.Errorf("%s: cold iSCSI (%d) below NFS v2 (%d)", name, counts[ISCSI], counts[NFSv2])
		}
		if counts[NFSv4] < counts[NFSv3] {
			t.Errorf("%s: cold v4 (%d) below v3 (%d)", name, counts[NFSv4], counts[NFSv3])
		}
	}
}

// TestFigure3Monotonic verifies amortized message counts fall with batch
// size for a couple of operations.
func TestFigure3Monotonic(t *testing.T) {
	series, err := RunFigure3(testOpts(), []int{1, 16, 256})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		if len(s.Points) != 3 {
			t.Fatalf("%s: %d points", s.Op, len(s.Points))
		}
		first, last := s.Points[0].PerOpMsgs, s.Points[2].PerOpMsgs
		t.Logf("%-8s amortized: n=1 %.2f  n=256 %.3f", s.Op, first, last)
		if last >= first {
			t.Errorf("%s: no aggregation benefit (%.2f -> %.2f)", s.Op, first, last)
		}
		if last > 1.0 {
			t.Errorf("%s: amortized cost at n=256 is %.2f, want < 1", s.Op, last)
		}
	}
}

// TestFigure5WriteFlatness verifies v3's async writes keep the cold-write
// panel flat while v2 grows past the 8 KB transfer limit.
func TestFigure5WriteFlatness(t *testing.T) {
	series, err := RunFigure5(testOpts(), []int{4096, 65536})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		if s.Panel != "cold-write" {
			continue
		}
		small, big := s.Points[0].Messages, s.Points[1].Messages
		t.Logf("cold-write 4K:  v2=%d v3=%d iscsi=%d", small[NFSv2], small[NFSv3], small[ISCSI])
		t.Logf("cold-write 64K: v2=%d v3=%d iscsi=%d", big[NFSv2], big[NFSv3], big[ISCSI])
		if big[NFSv2] < small[NFSv2]+7 {
			t.Errorf("v2 64K write should need ~8 more sync transfers: %d -> %d", small[NFSv2], big[NFSv2])
		}
		if big[NFSv3] > small[NFSv3]+2 {
			t.Errorf("v3 cold-write panel should stay flat: %d -> %d", small[NFSv3], big[NFSv3])
		}
	}
}

// TestRenderers smoke-tests the text renderers.
func TestRenderers(t *testing.T) {
	var buf bytes.Buffer
	rows := []SyscallRow{{Op: "mkdir",
		Depth0: map[Stack]int64{NFSv2: 2, NFSv3: 2, NFSv4: 4, ISCSI: 7},
		Depth3: map[Stack]int64{NFSv2: 5, NFSv3: 5, NFSv4: 10, ISCSI: 13}}}
	RenderSyscallTable(&buf, "Table 2", rows)
	if buf.Len() == 0 || !bytes.Contains(buf.Bytes(), []byte("mkdir")) {
		t.Fatal("empty render")
	}
}
