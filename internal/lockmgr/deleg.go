package lockmgr

import "time"

// Delegations is the server's NFSv4-style delegation table, keyed by
// path. Its state machine is deliberately *identical* to the Section-7
// simulator in internal/trace (trace.SimulateDelegation), which is the
// validation oracle for the full stack: a read delegation lets every
// holder serve reads locally, a write delegation lets a lone writer
// aggregate updates locally, and a conflicting access recalls whatever
// stands in its way. The caller (the NFS client's delegation fast path)
// turns "local" into zero RPCs and "non-local" into exactly one, so the
// replayed message reduction equals the oracle's by construction.
//
// Recalls are state flips here; their latency cost is the conflicting
// op's to pay. RecallLatency is how long that op stalls waiting for the
// server's callback round to the delegation holders (0 = instantaneous,
// the oracle's model).
type Delegations struct {
	// RecallLatency stalls the op that triggered a recall, modeling the
	// CB_RECALL round trip to the holders.
	RecallLatency time.Duration

	leases map[string]*dirLease

	reads       int64
	writes      int64
	localReads  int64
	localWrites int64
	recalls     int64
	readGrants  int64
	writeGrants int64
}

// dirLease mirrors the oracle's per-directory lease record: at most one
// writer (-1 = none) and any number of readers.
type dirLease struct {
	writer  int
	readers map[int]bool
}

// NewDelegations builds an empty delegation table.
func NewDelegations(recallLatency time.Duration) *Delegations {
	return &Delegations{RecallLatency: recallLatency, leases: make(map[string]*dirLease)}
}

func (d *Delegations) lease(path string) *dirLease {
	l := d.leases[path]
	if l == nil {
		l = &dirLease{writer: -1, readers: make(map[int]bool)}
		d.leases[path] = l
	}
	return l
}

// Read records client reading path. It returns whether the access is
// served locally under an existing delegation (zero messages) and how
// many outstanding delegations it recalled.
func (d *Delegations) Read(client int, path string) (local bool, recalls int) {
	d.reads++
	l := d.lease(path)
	// A read against an outstanding foreign write delegation recalls it.
	if l.writer != -1 && l.writer != client {
		recalls++
		l.writer = -1
	}
	if l.readers[client] || l.writer == client {
		local = true
		d.localReads++
	} else {
		l.readers[client] = true
		d.readGrants++
	}
	d.recalls += int64(recalls)
	return local, recalls
}

// Write records client updating path: local if the client already holds
// an uncontested write delegation, otherwise it recalls every other
// holder and takes the write delegation (the acquisition riding the
// update itself — one message).
func (d *Delegations) Write(client int, path string) (local bool, recalls int) {
	d.writes++
	l := d.lease(path)
	if l.writer == client && len(l.readers) == 0 {
		d.localWrites++
		return true, 0
	}
	for c := range l.readers {
		if c != client {
			recalls++
		}
	}
	if l.writer != -1 && l.writer != client {
		recalls++
	}
	l.readers = make(map[int]bool)
	l.writer = client
	d.writeGrants++
	d.recalls += int64(recalls)
	return false, recalls
}

// Reset drops all lease state, opening a fresh measurement window (the
// oracle test replays its trace against an empty table, like the
// simulator does). Counters survive — they are monotone telemetry.
func (d *Delegations) Reset() {
	d.leases = make(map[string]*dirLease)
}

// Recalls reports the cumulative recall count.
func (d *Delegations) Recalls() int64 { return d.recalls }

// Counters exports cumulative delegation counters for the metrics
// event stream (metrics.SubsysLease).
func (d *Delegations) Counters() map[string]int64 {
	return map[string]int64{
		"reads":        d.reads,
		"writes":       d.writes,
		"local_reads":  d.localReads,
		"local_writes": d.localWrites,
		"recalls":      d.recalls,
		"read_grants":  d.readGrants,
		"write_grants": d.writeGrants,
	}
}
