package lockmgr

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"
	"time"

	"repro/internal/trace"
)

// TestMutualExclusion drives a seeded random workload of try-lock and
// unlock calls and checks the core safety property after every step: no
// two held locks by different clients conflict (overlapping ranges with
// at least one exclusive side).
func TestMutualExclusion(t *testing.T) {
	iters := 20000
	if testing.Short() {
		iters = 2000
	}
	rng := rand.New(rand.NewSource(1))
	m := NewManager(Config{})
	now := time.Duration(0)
	type key struct {
		client int
		ino    uint64
		off    int64
		len    int64
	}
	held := map[key]Lock{}
	for i := 0; i < iters; i++ {
		now += time.Millisecond
		client := rng.Intn(4)
		ino := uint64(rng.Intn(3))
		off := int64(rng.Intn(8)) * 16
		length := int64(rng.Intn(4)) * 16 // 0 = to EOF
		if rng.Intn(3) == 0 && len(held) > 0 {
			// Unlock a random held lock (deterministic pick: lowest key).
			var best *Lock
			for _, l := range held {
				l := l
				if best == nil || less(l, *best) {
					best = &l
				}
			}
			if !m.Unlock(now, best.Client, best.Ino, best.Off, best.Len) {
				t.Fatalf("unlock of held lock failed: %+v", best)
			}
			delete(held, key{best.Client, best.Ino, best.Off, best.Len})
			continue
		}
		excl := rng.Intn(2) == 0
		if m.TryLock(now, client, ino, off, length, excl) {
			held[key{client, ino, off, length}] = Lock{Client: client, Ino: ino, Off: off, Len: length, Excl: excl}
		}
		locks := m.Held()
		for a := 0; a < len(locks); a++ {
			for b := a + 1; b < len(locks); b++ {
				if locks[a].conflicts(locks[b]) {
					t.Fatalf("step %d: conflicting locks both held: %+v vs %+v", i, locks[a], locks[b])
				}
			}
		}
	}
}

func less(a, b Lock) bool {
	if a.Client != b.Client {
		return a.Client < b.Client
	}
	if a.Ino != b.Ino {
		return a.Ino < b.Ino
	}
	if a.Off != b.Off {
		return a.Off < b.Off
	}
	return a.Len < b.Len
}

// TestFIFOGrantOrder checks the fairness rule: after a release, the
// earliest-queued waiter wins even when a later waiter polls first.
func TestFIFOGrantOrder(t *testing.T) {
	m := NewManager(Config{})
	if !m.TryLock(0, 0, 1, 0, 0, true) {
		t.Fatal("initial lock denied")
	}
	if m.TryLock(1, 1, 1, 0, 0, true) {
		t.Fatal("conflicting lock granted")
	}
	if m.TryLock(2, 2, 1, 0, 0, true) {
		t.Fatal("conflicting lock granted")
	}
	if !m.Unlock(3, 0, 1, 0, 0) {
		t.Fatal("unlock failed")
	}
	// Client 2 polls first but client 1 queued first.
	if m.TryLock(4, 2, 1, 0, 0, true) {
		t.Fatal("client 2 jumped the queue over client 1")
	}
	if !m.TryLock(5, 1, 1, 0, 0, true) {
		t.Fatal("oldest waiter denied after release")
	}
	// Client 1 holds; 2 still waits.
	if m.TryLock(6, 2, 1, 0, 0, true) {
		t.Fatal("lock granted while held by client 1")
	}
	if !m.Unlock(7, 1, 1, 0, 0) {
		t.Fatal("unlock failed")
	}
	if !m.TryLock(8, 2, 1, 0, 0, true) {
		t.Fatal("last waiter denied after queue drained")
	}
}

// TestNoLostWakeups checks that a release is immediately visible: the
// sole queued waiter's very next poll succeeds, for every interleaving
// of a seeded random acquire/release schedule.
func TestNoLostWakeups(t *testing.T) {
	iters := 2000
	if testing.Short() {
		iters = 200
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < iters; i++ {
		m := NewManager(Config{})
		off := int64(rng.Intn(4)) * 8
		length := int64(rng.Intn(3)) * 8
		if !m.TryLock(0, 0, 9, off, length, true) {
			t.Fatal("initial lock denied")
		}
		if m.TryLock(1, 1, 9, off, length, true) {
			t.Fatal("conflicting lock granted")
		}
		m.Unlock(2, 0, 9, off, length)
		if !m.TryLock(3, 1, 9, off, length, true) {
			t.Fatalf("iter %d: waiter's poll after release denied (lost wakeup)", i)
		}
	}
}

// TestSharedLocksCoexist checks that shared (read) locks on overlapping
// ranges are granted concurrently and still exclude a writer.
func TestSharedLocksCoexist(t *testing.T) {
	m := NewManager(Config{})
	for c := 0; c < 3; c++ {
		if !m.TryLock(time.Duration(c), c, 1, 0, 0, false) {
			t.Fatalf("shared lock for client %d denied", c)
		}
	}
	if m.TryLock(3, 3, 1, 0, 0, true) {
		t.Fatal("exclusive lock granted over shared holders")
	}
	for c := 0; c < 3; c++ {
		m.Unlock(time.Duration(4+c), c, 1, 0, 0)
	}
	if !m.TryLock(8, 3, 1, 0, 0, true) {
		t.Fatal("exclusive lock denied after shared holders released")
	}
}

// TestDisjointRangesCoexist checks byte-range granularity: exclusive
// locks on disjoint ranges of one file coexist.
func TestDisjointRangesCoexist(t *testing.T) {
	m := NewManager(Config{})
	if !m.TryLock(0, 0, 1, 0, 100, true) {
		t.Fatal("lock [0,100) denied")
	}
	if !m.TryLock(1, 1, 1, 100, 100, true) {
		t.Fatal("disjoint lock [100,200) denied")
	}
	if m.TryLock(2, 2, 1, 50, 100, true) {
		t.Fatal("overlapping lock [50,150) granted")
	}
}

// TestLeaseExpiry checks that an unrenewed client's locks lapse and
// become grantable to others, counted as lease_expiries.
func TestLeaseExpiry(t *testing.T) {
	m := NewManager(Config{LeaseTTL: time.Second})
	if !m.TryLock(0, 0, 1, 0, 0, true) {
		t.Fatal("initial lock denied")
	}
	if m.TryLock(500*time.Millisecond, 1, 1, 0, 0, true) {
		t.Fatal("lock granted inside holder's lease")
	}
	// Holder goes silent past its TTL.
	if !m.TryLock(1500*time.Millisecond, 1, 1, 0, 0, true) {
		t.Fatal("lock denied after holder's lease expired")
	}
	if got := m.Counters()["lease_expiries"]; got != 1 {
		t.Fatalf("lease_expiries = %d, want 1", got)
	}
	// Renewal keeps a lease alive.
	m2 := NewManager(Config{LeaseTTL: time.Second})
	m2.TryLock(0, 0, 1, 0, 0, true)
	m2.Renew(900*time.Millisecond, 0)
	if m2.TryLock(1500*time.Millisecond, 1, 1, 0, 0, true) {
		t.Fatal("lock granted despite holder's renewed lease")
	}
}

// TestGracePeriod checks NLM/NSM restart recovery: during grace only
// reclaims succeed, fresh requests are denied (grace_denials), and the
// window closes on schedule.
func TestGracePeriod(t *testing.T) {
	m := NewManager(Config{GracePeriod: 2 * time.Second})
	m.TryLock(0, 0, 1, 0, 0, true)
	m.Reset() // server restart: lock table dies
	m.EnterGrace(10 * time.Second)

	if m.TryLock(10500*time.Millisecond, 1, 1, 0, 0, true) {
		t.Fatal("fresh lock granted during grace")
	}
	if got := m.Counters()["grace_denials"]; got != 1 {
		t.Fatalf("grace_denials = %d, want 1", got)
	}
	if !m.Reclaim(11*time.Second, 0, 1, 0, 0, true) {
		t.Fatal("reclaim denied during grace")
	}
	if got := m.Counters()["grace_reclaims"]; got != 1 {
		t.Fatalf("grace_reclaims = %d, want 1", got)
	}
	// Reclaimed lock excludes the other client even after grace ends.
	if m.TryLock(13*time.Second, 1, 1, 0, 0, true) {
		t.Fatal("lock granted over reclaimed lock after grace")
	}
	m.Unlock(14*time.Second, 0, 1, 0, 0)
	if !m.TryLock(15*time.Second, 1, 1, 0, 0, true) {
		t.Fatal("normal grant denied after grace closed")
	}
}

// timeline runs a seeded random lock workload and renders every event
// (call, arguments, outcome, counters) into one string.
func timeline(seed int64, iters int) string {
	rng := rand.New(rand.NewSource(seed))
	m := NewManager(Config{LeaseTTL: 10 * time.Second})
	now := time.Duration(0)
	out := ""
	for i := 0; i < iters; i++ {
		now += time.Duration(rng.Intn(1000)) * time.Millisecond
		client := rng.Intn(5)
		ino := uint64(rng.Intn(2))
		off := int64(rng.Intn(6)) * 32
		length := int64(rng.Intn(3)) * 32
		switch rng.Intn(4) {
		case 0:
			ok := m.Unlock(now, client, ino, off, length)
			out += fmt.Sprintf("%d unlock c%d i%d [%d+%d] -> %v\n", now, client, ino, off, length, ok)
		default:
			excl := rng.Intn(2) == 0
			ok := m.TryLock(now, client, ino, off, length, excl)
			out += fmt.Sprintf("%d lock c%d i%d [%d+%d] excl=%v -> %v\n", now, client, ino, off, length, excl, ok)
		}
	}
	out += fmt.Sprintf("counters=%v held=%v\n", m.Counters(), m.Held())
	return out
}

// TestDeterministicTimeline checks that the same seed yields a
// byte-identical grant timeline — the property the cluster determinism
// suite leans on.
func TestDeterministicTimeline(t *testing.T) {
	iters := 5000
	if testing.Short() {
		iters = 500
	}
	a := timeline(42, iters)
	b := timeline(42, iters)
	if a != b {
		t.Fatal("same seed produced different grant timelines")
	}
	if c := timeline(43, iters); c == a {
		t.Fatal("different seeds produced identical timelines (suspicious)")
	}
}

// TestDelegationsMatchOracle feeds a synthesized Section-7 trace through
// the Delegations table record by record and checks the outcome equals
// trace.SimulateDelegation exactly — the table and the simulator are
// the same state machine, and this test is what licenses using the
// simulator as the full-stack oracle.
func TestDelegationsMatchOracle(t *testing.T) {
	for _, p := range []trace.Profile{trace.EECS(), trace.Campus()} {
		p.Duration = 30 * time.Second
		recs := trace.Synthesize(p)
		if testing.Short() && len(recs) > 5000 {
			recs = recs[:5000]
		}
		want := trace.SimulateDelegation(recs)

		d := NewDelegations(0)
		var local int64
		for _, r := range recs {
			dir := "/t" + strconv.Itoa(r.Dir)
			var isLocal bool
			if r.Kind == trace.OpWrite {
				isLocal, _ = d.Write(r.Client, dir)
			} else {
				isLocal, _ = d.Read(r.Client, dir)
			}
			if isLocal {
				local++
			}
		}
		total := int64(len(recs))
		gotReduction := float64(local) / float64(total)
		gotRatio := float64(d.Recalls()) / float64(total)
		if gotReduction != want.MessageReduction {
			t.Errorf("%s: message reduction %.9f, oracle %.9f", p.Name, gotReduction, want.MessageReduction)
		}
		if d.Recalls() != want.Recalls {
			t.Errorf("%s: recalls %d, oracle %d", p.Name, d.Recalls(), want.Recalls)
		}
		if gotRatio != want.RecallRatio {
			t.Errorf("%s: recall ratio %.9f, oracle %.9f", p.Name, gotRatio, want.RecallRatio)
		}
	}
}
