// Package lockmgr implements the server-side state for cross-client
// sharing: an NLM-style byte-range lock manager with leases and a
// post-restart grace period (this file), and NFSv4-style per-directory
// read/write delegations with recall-on-conflict (deleg.go).
//
// Everything here is deterministic simulation state, not a concurrent
// lock service: the cooperative scheduler serializes all calls, so the
// manager is plain data guarded by program order. Blocking lock waits
// are modeled the way NLM clients actually behave over UDP — the client
// polls, each denied poll being one real LOCK RPC — so the manager only
// ever answers "granted or not, right now". Fairness across polls is
// preserved with an explicit FIFO waiter queue: a request that would
// jump an earlier-queued conflicting waiter is denied even when it no
// longer conflicts with a held lock, which is what keeps ping-pong
// workloads from starving a slow client.
package lockmgr

import "time"

// Config parameterizes a Manager.
type Config struct {
	// LeaseTTL expires a client's locks when it has not renewed (issued
	// any lock traffic) for this long. Zero means leases never expire.
	LeaseTTL time.Duration
	// GracePeriod is the reclaim-only window entered on server restart:
	// NLM/NSM recovery, where clients re-claim locks they held before
	// the crash and fresh requests are denied until the window closes.
	GracePeriod time.Duration
}

// Lock is one held byte-range lock. Len <= 0 means "to EOF" (whole
// remainder of the file), matching NLM's l_len = 0 convention.
type Lock struct {
	Client int
	Ino    uint64
	Off    int64
	Len    int64
	Excl   bool
}

// overlaps reports whether two ranges on the same file intersect.
func (l Lock) overlaps(m Lock) bool {
	if l.Ino != m.Ino {
		return false
	}
	if l.Len > 0 && l.Off+l.Len <= m.Off {
		return false
	}
	if m.Len > 0 && m.Off+m.Len <= l.Off {
		return false
	}
	return true
}

// conflicts reports whether two locks cannot coexist: overlapping
// ranges, different clients, and at least one side exclusive.
func (l Lock) conflicts(m Lock) bool {
	return l.Client != m.Client && (l.Excl || m.Excl) && l.overlaps(m)
}

// Manager is the server's lock table. The zero value is not usable;
// call NewManager.
type Manager struct {
	cfg Config

	held    []Lock // grant order
	waiters []Lock // FIFO arrival order of blocked requests

	lastRenew map[int]time.Duration // per-client last lease renewal

	inGrace  bool
	graceEnd time.Duration

	grants        int64
	denials       int64
	unlocks       int64
	expiries      int64
	graceDenials  int64
	graceReclaims int64
}

// NewManager builds an empty lock table.
func NewManager(cfg Config) *Manager {
	return &Manager{cfg: cfg, lastRenew: make(map[int]time.Duration)}
}

// TryLock attempts to acquire a byte-range lock for client at virtual
// time now. It answers immediately — granted or denied — because the
// wire protocol it models (NLM over the repo's SunRPC) has the client
// poll blocked locks. A denied request joins the FIFO waiter queue and
// later polls for the same range keep its place.
func (m *Manager) TryLock(now time.Duration, client int, ino uint64, off, length int64, excl bool) bool {
	m.expire(now)
	m.renew(now, client)
	if m.graceActive(now) {
		m.graceDenials++
		return false
	}
	req := Lock{Client: client, Ino: ino, Off: off, Len: length, Excl: excl}
	return m.admit(req)
}

// Reclaim re-asserts a lock the client held before a server restart.
// It is the only acquisition path open during the grace period.
func (m *Manager) Reclaim(now time.Duration, client int, ino uint64, off, length int64, excl bool) bool {
	m.expire(now)
	m.renew(now, client)
	req := Lock{Client: client, Ino: ino, Off: off, Len: length, Excl: excl}
	for _, h := range m.held {
		if h == req {
			return true
		}
		if h.conflicts(req) {
			// Another client's reclaim got here first: overlapping
			// pre-crash state, which the grace window cannot repair.
			m.denials++
			return false
		}
	}
	m.held = append(m.held, req)
	m.grants++
	if m.graceActive(now) {
		m.graceReclaims++
	}
	return true
}

// admit applies the grant rules to req: deny on conflict with a held
// lock, deny when an earlier-queued waiter conflicts (FIFO fairness),
// grant otherwise. Denied requests are left queued; a granted request's
// queue entry is removed.
func (m *Manager) admit(req Lock) bool {
	for _, h := range m.held {
		if h == req {
			return true // idempotent re-grant of an identical lock
		}
		if h.conflicts(req) {
			m.enqueue(req)
			m.denials++
			return false
		}
	}
	// No held conflict. Honor the queue: anyone who was waiting before
	// this request arrived (or before its own queue slot) goes first.
	pos := m.waiterIndex(req)
	limit := len(m.waiters)
	if pos >= 0 {
		limit = pos
	}
	for _, w := range m.waiters[:limit] {
		if w.conflicts(req) {
			m.enqueue(req)
			m.denials++
			return false
		}
	}
	if pos >= 0 {
		m.waiters = append(m.waiters[:pos], m.waiters[pos+1:]...)
	}
	m.held = append(m.held, req)
	m.grants++
	return true
}

// Unlock releases the client's lock exactly matching the range. There
// are no wakeups to deliver — blocked clients poll — so release is just
// table surgery; the FIFO queue guarantees the oldest waiter wins the
// next round of polls.
func (m *Manager) Unlock(now time.Duration, client int, ino uint64, off, length int64) bool {
	m.expire(now)
	m.renew(now, client)
	for i, h := range m.held {
		if h.Client == client && h.Ino == ino && h.Off == off && h.Len == length {
			m.held = append(m.held[:i], m.held[i+1:]...)
			m.unlocks++
			return true
		}
	}
	return false
}

// Renew refreshes the client's lease without lock traffic.
func (m *Manager) Renew(now time.Duration, client int) {
	m.expire(now)
	m.renew(now, client)
}

func (m *Manager) renew(now time.Duration, client int) {
	m.lastRenew[client] = now
}

// expire drops the locks and queue slots of clients whose lease lapsed.
func (m *Manager) expire(now time.Duration) {
	if m.cfg.LeaseTTL <= 0 {
		return
	}
	lapsed := func(client int) bool {
		last, ok := m.lastRenew[client]
		return ok && now > last+m.cfg.LeaseTTL
	}
	kept := m.held[:0]
	for _, h := range m.held {
		if lapsed(h.Client) {
			m.expiries++
			continue
		}
		kept = append(kept, h)
	}
	m.held = kept
	keptW := m.waiters[:0]
	for _, w := range m.waiters {
		if !lapsed(w.Client) {
			keptW = append(keptW, w)
		}
	}
	m.waiters = keptW
}

// EnterGrace starts the reclaim-only window (server restart).
func (m *Manager) EnterGrace(now time.Duration) {
	if m.cfg.GracePeriod <= 0 {
		return
	}
	m.inGrace = true
	m.graceEnd = now + m.cfg.GracePeriod
}

// InGrace reports whether the grace period is still open at now.
func (m *Manager) InGrace(now time.Duration) bool { return m.graceActive(now) }

func (m *Manager) graceActive(now time.Duration) bool {
	if m.inGrace && now >= m.graceEnd {
		m.inGrace = false
	}
	return m.inGrace
}

// Reset drops all volatile lock state — the server restarted and its
// lock table died with it. Counters survive: they are cumulative
// telemetry, and the metrics recorder expects monotone sources.
func (m *Manager) Reset() {
	m.held = nil
	m.waiters = nil
	m.lastRenew = make(map[int]time.Duration)
	m.inGrace = false
}

// Held returns a copy of the lock table in grant order (tests).
func (m *Manager) Held() []Lock { return append([]Lock(nil), m.held...) }

// enqueue appends req to the waiter queue unless already present.
func (m *Manager) enqueue(req Lock) {
	if m.waiterIndex(req) < 0 {
		m.waiters = append(m.waiters, req)
	}
}

func (m *Manager) waiterIndex(req Lock) int {
	for i, w := range m.waiters {
		if w == req {
			return i
		}
	}
	return -1
}

// Gauges exports the manager's instantaneous queue state for the health
// scraper (metrics.SubsysGauge): held locks and blocked waiters at time
// now. It is read-only — expiry stays with the request path, so scraping
// never perturbs the lock timeline.
func (m *Manager) Gauges(now time.Duration) map[string]float64 {
	return map[string]float64{
		"held":    float64(len(m.held)),
		"waiters": float64(len(m.waiters)),
	}
}

// Counters exports cumulative lock-manager counters for the metrics
// event stream (metrics.SubsysLock).
func (m *Manager) Counters() map[string]int64 {
	return map[string]int64{
		"grants":         m.grants,
		"denials":        m.denials,
		"unlocks":        m.unlocks,
		"lease_expiries": m.expiries,
		"grace_denials":  m.graceDenials,
		"grace_reclaims": m.graceReclaims,
	}
}
