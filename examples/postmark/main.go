// PostMark example: run the paper's meta-data-intensive macro-benchmark
// (Section 5.1) at a reduced scale on all four stacks and print the
// comparison — the headline result that iSCSI beats NFS by an order of
// magnitude on small-file workloads.
package main

import (
	"fmt"
	"log"

	"repro/internal/testbed"
	"repro/internal/workload"
)

func main() {
	cfg := workload.PostMarkConfig{
		Files:        500,
		Transactions: 5000,
		MinSize:      500,
		MaxSize:      10000,
		Seed:         42,
	}
	fmt.Printf("PostMark: %d files, %d transactions\n\n", cfg.Files, cfg.Transactions)
	fmt.Printf("%-8s %12s %10s %12s %10s\n", "stack", "time", "msgs", "txn/sec", "srv CPU")
	for _, kind := range testbed.AllKinds {
		tb, err := testbed.New(testbed.Config{Kind: kind})
		if err != nil {
			log.Fatalf("testbed %v: %v", kind, err)
		}
		res, stats, err := workload.PostMark(tb, cfg)
		if err != nil {
			log.Fatalf("postmark on %v: %v", kind, err)
		}
		fmt.Printf("%-8s %12v %10d %12.0f %9.0f%%\n",
			kind, res.Elapsed.Round(1000000), res.Messages, res.Throughput, res.ServerCPU*100)
		_ = stats
	}
	fmt.Println("\nThe NFS columns pay one or more synchronous RPCs per meta-data")
	fmt.Println("operation; the iSCSI column batches whole transaction groups into")
	fmt.Println("journal commits (compare with Table 5 of the paper).")
}
