// Quickstart: build both of the paper's testbeds (an NFS v3 client/server
// pair and an iSCSI-backed local ext3), run the same small workload on
// each, and print the wire traffic each generated — the repository's
// one-minute tour of the file-access vs block-access comparison.
package main

import (
	"fmt"
	"log"

	"repro/internal/testbed"
)

func main() {
	for _, kind := range []testbed.Kind{testbed.NFSv3, testbed.ISCSI} {
		tb, err := testbed.New(testbed.Config{Kind: kind})
		if err != nil {
			log.Fatalf("testbed %v: %v", kind, err)
		}

		before := tb.Snap()

		// A little meta-data work...
		if err := tb.Mkdir("/project"); err != nil {
			log.Fatal(err)
		}
		if err := tb.WriteFile("/project/notes.txt", []byte("ip-networked storage\n")); err != nil {
			log.Fatal(err)
		}
		if err := tb.Rename("/project/notes.txt", "/project/README"); err != nil {
			log.Fatal(err)
		}
		// ...and a little data work.
		data, err := tb.ReadFile("/project/README")
		if err != nil {
			log.Fatal(err)
		}
		if err := tb.Drain(); err != nil {
			log.Fatal(err)
		}

		d := tb.Since(before)
		fmt.Printf("%-8s read back %q\n", tb.Kind, data)
		fmt.Printf("%-8s messages=%d frames=%d bytes=%d virtual-time=%v\n\n",
			tb.Kind, d.Messages, d.Frames, d.Bytes, d.Elapsed.Round(0))
	}
	fmt.Println("Same workload, two architectures: the message counts differ because")
	fmt.Println("NFS resolves names with synchronous RPCs while the iSCSI client's")
	fmt.Println("ext3 journal aggregates meta-data updates into batched block writes.")
}
