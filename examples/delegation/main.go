// Delegation example: the paper's Section 7 proposal, running. An
// enhanced NFS client with directory delegation and a strongly-consistent
// meta-data cache executes a burst of meta-data updates with iSCSI-like
// message counts, while a second client's conflicting access exercises
// the lease-recall path.
package main

import (
	"fmt"
	"log"

	"repro/internal/blockdev"
	"repro/internal/ext3"
	"repro/internal/nfs"
	"repro/internal/nfsplus"
	"repro/internal/simnet"
	"repro/internal/sunrpc"
)

func main() {
	// Server: an ext3 export.
	dev := blockdev.NewTestbedArray(65536)
	if _, err := ext3.Mkfs(0, dev, ext3.Options{}); err != nil {
		log.Fatal(err)
	}
	fs, _, err := ext3.Mount(0, dev, ext3.Options{})
	if err != nil {
		log.Fatal(err)
	}
	net := simnet.New(simnet.DefaultLAN())
	srv := nfs.NewServer(fs, nil)
	co := nfsplus.NewCoordinator(srv, net)

	alice := nfsplus.NewClient(co, sunrpc.NewClient(net, sunrpc.TCP), nil)
	bob := nfsplus.NewClient(co, sunrpc.NewClient(net, sunrpc.TCP), nil)
	at, _ := alice.Mount(0)
	at, _ = bob.Mount(at)

	// Alice creates a tree under delegation.
	before := net.Stats().Messages
	const n = 100
	for i := 0; i < n; i++ {
		if at, err = alice.Mkdir(at, fmt.Sprintf("/work/d%d", i), 0o755); err != nil && i == 0 {
			// First create needs the parent.
			if at, err = alice.Mkdir(at, "/work", 0o755); err != nil {
				log.Fatal(err)
			}
			i--
			continue
		} else if err != nil {
			log.Fatal(err)
		}
	}
	if at, err = alice.Sync(at); err != nil {
		log.Fatal(err)
	}
	burst := net.Stats().Messages - before
	fmt.Printf("alice: %d mkdirs under delegation -> %d wire messages (%.2f/op)\n",
		n, burst, float64(burst)/float64(n))
	fmt.Printf("alice: localOps=%d leaseRPCs=%d flushRPCs=%d\n",
		alice.LocalOps, alice.LeaseRPCs, alice.FlushRPCs)

	// Bob reads the directory: strong consistency, no staleness window.
	ents, at, err := bob.ReadDir(at, "/work")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bob:   sees %d entries immediately (no attribute-cache staleness)\n", len(ents))

	// Bob's own update recalls Alice's lease.
	if at, err = bob.Mkdir(at, "/work/from-bob", 0o755); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coordinator: recalls=%d callbacks=%d after bob's conflicting update\n",
		co.Recalls, co.Callbacks)
	_ = at
}
