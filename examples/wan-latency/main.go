// WAN latency example: the paper's NISTNet experiment (Section 4.6) in
// miniature — sweep the round-trip time and watch NFS writes degrade
// linearly while iSCSI's asynchronous writes stay flat.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/testbed"
	"repro/internal/workload"
)

func main() {
	cfg := workload.SeqRandConfig{FileSize: 8 << 20, ChunkSize: 4096, Seed: 7}
	fmt.Printf("Sequential write of %d MB in 4 KB chunks\n\n", cfg.FileSize>>20)
	fmt.Printf("%-8s %14s %14s\n", "RTT", "NFS v3", "iSCSI")
	for _, rttMS := range []int{0, 10, 30, 50, 90} {
		times := map[testbed.Kind]time.Duration{}
		for _, kind := range []testbed.Kind{testbed.NFSv3, testbed.ISCSI} {
			tb, err := testbed.New(testbed.Config{Kind: kind})
			if err != nil {
				log.Fatal(err)
			}
			if rttMS > 0 {
				tb.SetRTT(time.Duration(rttMS) * time.Millisecond)
			}
			res, err := workload.SequentialWrite(tb, cfg)
			if err != nil {
				log.Fatalf("write on %v at %dms: %v", kind, rttMS, err)
			}
			times[kind] = res.Elapsed
		}
		fmt.Printf("%-8s %14v %14v\n", fmt.Sprintf("%dms", rttMS),
			times[testbed.NFSv3].Round(time.Millisecond),
			times[testbed.ISCSI].Round(time.Millisecond))
	}
	fmt.Println("\nNFS's bounded async-write pool degenerates to pseudo-synchronous")
	fmt.Println("behaviour, so every page pays the round trip; iSCSI's write-back")
	fmt.Println("cache is indifferent to latency (compare with Figure 6b).")
}
