package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/metrics"
)

// TestBenchJSONSchema exercises the -benchjson flush path and validates
// its output against the unified event schema (docs/METRICS.md): subsys
// "bench", point events at t=0 tagged {bench, metric} — the same stream
// CI uploads as an artifact and checks with `cmd/metrics -validate`.
func TestBenchJSONSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.jsonl")
	old, oldRecords := *benchJSON, benchRecords
	*benchJSON = path
	benchRecords = map[string]benchRecord{
		"BenchmarkA\x00msgs": {bench: "BenchmarkA", metric: "msgs", value: 42.5, n: 3},
		"BenchmarkB\x00rate": {bench: "BenchmarkB", metric: "rate", value: 1.08, n: 1},
	}
	defer func() { *benchJSON, benchRecords = old, oldRecords }()

	if err := flushBenchJSON(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := metrics.ReadEvents(f)
	if err != nil {
		t.Fatalf("benchjson output does not validate: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	e := events[0]
	if e.Subsys != metrics.SubsysBench || e.Kind != metrics.KindPoint || e.T != 0 {
		t.Fatalf("bad bench event shape: %+v", e)
	}
	if e.Tags["bench"] != "BenchmarkA" || e.Tags["metric"] != "msgs" {
		t.Fatalf("bad bench tags: %+v", e.Tags)
	}
	if e.Values["value"] != 42.5 || e.Values["n"] != 3 {
		t.Fatalf("bad bench values: %+v", e.Values)
	}
}
