// Command metrics summarizes and validates the JSONL telemetry streams
// every other cmd writes through its -metrics flag (schema in
// docs/METRICS.md), so a recorded sweep is self-serve: per-tag counter
// totals, per-virtual-second rates, value percentiles and counter-over-
// time rate windows come out of the stream without re-running the
// simulation.
//
//	go run ./cmd/transport -size 1 -metrics transport.jsonl
//	go run ./cmd/metrics transport.jsonl                    # roll-up
//	go run ./cmd/metrics -by stack,transport transport.jsonl
//	go run ./cmd/metrics -rate 100ms transport.jsonl        # rate windows
//	go run ./cmd/metrics -validate bench.jsonl              # schema check
//
// Input files may also be passed via -metrics (the flag every cmd in this
// repository accepts; here it names a stream to read, not to write).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/metrics"
)

func main() {
	by := flag.String("by", "experiment,stack,transport", "comma-separated tag keys to group by")
	rate := flag.Duration("rate", 0, "bucket sample deltas into virtual-time windows of this width (0 = off)")
	validate := flag.Bool("validate", false, "only validate the streams against the schema")
	input := flag.String("metrics", "", "an additional JSONL stream to read (same as a positional argument)")
	flag.Parse()

	paths := flag.Args()
	if *input != "" {
		paths = append(paths, *input)
	}
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "metrics: no input streams (pass JSONL files)")
		flag.Usage()
		os.Exit(2)
	}

	var events []metrics.Event
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			fatal(err.Error())
		}
		evs, err := metrics.ReadEvents(f)
		f.Close()
		if err != nil {
			fatal(path + ": " + err.Error())
		}
		events = append(events, evs...)
	}
	if *validate {
		fmt.Printf("ok: %d events across %d stream(s) validate against docs/METRICS.md\n",
			len(events), len(paths))
		return
	}

	var keys []string
	for _, k := range strings.Split(*by, ",") {
		if k = strings.TrimSpace(k); k != "" {
			keys = append(keys, k)
		}
	}
	if *rate > 0 {
		metrics.RenderWindows(os.Stdout, metrics.Windows(events, *rate, keys), *rate)
		return
	}
	metrics.Summarize(events, keys).Render(os.Stdout)
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "metrics:", msg)
	os.Exit(1)
}
