// Command postmark regenerates Table 5: PostMark completion times and
// message counts at pool sizes of 1,000, 5,000 and 25,000 files with
// 100,000 transactions, on NFS v3 and iSCSI.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	scale := flag.Float64("scale", 1.0, "scale factor for pool/transactions (1.0 = paper)")
	flag.Parse()

	rows, err := core.RunTable5(core.Options{}, core.MacroScale(*scale))
	if err != nil {
		fmt.Fprintln(os.Stderr, "postmark:", err)
		os.Exit(1)
	}
	core.RenderTable5(os.Stdout, rows)
}
