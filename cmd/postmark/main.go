// Command postmark regenerates Table 5: PostMark completion times and
// message counts at pool sizes of 1,000, 5,000 and 25,000 files with
// 100,000 transactions, on NFS v3 and iSCSI.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/metrics"
)

func main() {
	scale := flag.Float64("scale", 1.0, "scale factor for pool/transactions (1.0 = paper)")
	metricsPath := flag.String("metrics", "", "write JSONL telemetry events to this file (see docs/METRICS.md)")
	prof := cliutil.ProfileFlags()
	flag.Parse()

	fatal := func(msg string) {
		fmt.Fprintln(os.Stderr, "postmark:", msg)
		os.Exit(1)
	}
	if err := cliutil.Float(*scale, "scale", 0.01, 100); err != nil {
		fatal(err.Error())
	}
	if err := prof.Start(); err != nil {
		fatal(err.Error())
	}
	sink, closeSink, err := metrics.OpenFileSink(*metricsPath)
	if err != nil {
		fatal(err.Error())
	}
	rows, err := core.RunTable5(core.Options{
		Metrics: metrics.NewRecorder(sink, metrics.Tags{"cmd": "postmark"}),
	}, core.MacroScale(*scale))
	if err != nil {
		fatal(err.Error())
	}
	core.RenderTable5(os.Stdout, rows)
	if err := sink.Err(); err == nil {
		err = closeSink()
	}
	if err != nil {
		fatal("metrics: " + err.Error())
	}
	if err := prof.Stop(); err != nil {
		fatal(err.Error())
	}
}
