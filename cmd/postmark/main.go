// Command postmark regenerates Table 5: PostMark completion times and
// message counts at pool sizes of 1,000, 5,000 and 25,000 files with
// 100,000 transactions, on NFS v3 and iSCSI.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/metrics"
)

func main() {
	scale := flag.Float64("scale", 1.0, "scale factor for pool/transactions (1.0 = paper)")
	metricsPath := flag.String("metrics", "", "write JSONL telemetry events to this file (see docs/METRICS.md)")
	flag.Parse()

	sink, closeSink, err := metrics.OpenFileSink(*metricsPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "postmark:", err)
		os.Exit(1)
	}
	rows, err := core.RunTable5(core.Options{
		Metrics: metrics.NewRecorder(sink, metrics.Tags{"cmd": "postmark"}),
	}, core.MacroScale(*scale))
	if err != nil {
		fmt.Fprintln(os.Stderr, "postmark:", err)
		os.Exit(1)
	}
	core.RenderTable5(os.Stdout, rows)
	if err := sink.Err(); err == nil {
		err = closeSink()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "postmark: metrics:", err)
		os.Exit(1)
	}
}
