// Command tracesim regenerates the paper's Section 7 results: Figure 7
// (directory sharing characteristics of the EECS-like and Campus-like
// traces) and the trace-driven evaluation of the proposed enhancements —
// the strongly-consistent read-only meta-data cache (reduction and
// callback ratio versus cache size) and directory delegation.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
)

func main() {
	figure7 := flag.Bool("figure7", false, "directory sharing analysis (Figure 7)")
	enhance := flag.Bool("enhance", false, "meta-data cache and delegation simulation")
	all := flag.Bool("all", false, "run both")
	flag.Parse()

	if !*figure7 && !*enhance && !*all {
		flag.Usage()
		os.Exit(2)
	}
	profiles := []trace.Profile{trace.EECS(), trace.Campus()}
	if *figure7 || *all {
		for _, p := range profiles {
			recs := trace.Synthesize(p)
			pts := trace.AnalyzeSharing(recs, nil)
			fmt.Print(trace.FormatSharing(p.Name, pts))
		}
	}
	if *enhance || *all {
		fmt.Println("Section 7: strongly-consistent read-only meta-data cache")
		fmt.Printf("%-8s %-10s %12s %12s\n", "trace", "cache", "reduction", "callbacks/msg")
		for _, p := range profiles {
			recs := trace.Synthesize(p)
			for _, size := range []int{64, 256, 1024, 4096} {
				r := trace.SimulateMetadataCache(recs, size)
				fmt.Printf("%-8s %-10d %11.1f%% %12.4f\n", p.Name, size, r.Reduction*100, r.CallbackRatio)
			}
		}
		fmt.Println("Section 7: directory delegation")
		fmt.Printf("%-8s %12s %12s\n", "trace", "reduction", "recalls/msg")
		for _, p := range profiles {
			r := trace.SimulateDelegation(trace.Synthesize(p))
			fmt.Printf("%-8s %11.1f%% %12.4f\n", p.Name, r.MessageReduction*100, r.RecallRatio)
		}
	}
}
