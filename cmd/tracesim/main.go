// Command tracesim regenerates the paper's Section 7 results: Figure 7
// (directory sharing characteristics of the EECS-like and Campus-like
// traces) and the trace-driven evaluation of the proposed enhancements —
// the strongly-consistent read-only meta-data cache (reduction and
// callback ratio versus cache size) and directory delegation.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/cliutil"
	"repro/internal/metrics"
	"repro/internal/trace"
)

func main() {
	figure7 := flag.Bool("figure7", false, "directory sharing analysis (Figure 7)")
	enhance := flag.Bool("enhance", false, "meta-data cache and delegation simulation")
	all := flag.Bool("all", false, "run both")
	metricsPath := flag.String("metrics", "", "write JSONL telemetry events to this file (see docs/METRICS.md)")
	prof := cliutil.ProfileFlags()
	flag.Parse()

	if !*figure7 && !*enhance && !*all {
		flag.Usage()
		os.Exit(2)
	}
	if err := prof.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "tracesim:", err)
		os.Exit(1)
	}
	sink, closeSink, err := metrics.OpenFileSink(*metricsPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracesim:", err)
		os.Exit(1)
	}
	rec := metrics.NewRecorder(sink, metrics.Tags{"cmd": "tracesim", "experiment": "tracesim"})
	profiles := []trace.Profile{trace.EECS(), trace.Campus()}
	if *figure7 || *all {
		for _, p := range profiles {
			recs := trace.Synthesize(p)
			pts := trace.AnalyzeSharing(recs, nil)
			fmt.Print(trace.FormatSharing(p.Name, pts))
			// Whole-trace analyses carry the sharing interval in virtual
			// time and the profile in tags.
			for _, pt := range pts {
				rec.Point(pt.Interval, metrics.SubsysRun,
					metrics.Tags{"analysis": "sharing", "profile": p.Name},
					map[string]float64{
						"read_one":         pt.ReadOne,
						"write_one":        pt.WriteOne,
						"read_multiple":    pt.ReadMultiple,
						"written_multiple": pt.WrittenMultiple,
					})
			}
		}
	}
	if *enhance || *all {
		fmt.Println("Section 7: strongly-consistent read-only meta-data cache")
		fmt.Printf("%-8s %-10s %12s %12s\n", "trace", "cache", "reduction", "callbacks/msg")
		for _, p := range profiles {
			recs := trace.Synthesize(p)
			for _, size := range []int{64, 256, 1024, 4096} {
				r := trace.SimulateMetadataCache(recs, size)
				fmt.Printf("%-8s %-10d %11.1f%% %12.4f\n", p.Name, size, r.Reduction*100, r.CallbackRatio)
				rec.Point(0, metrics.SubsysRun,
					metrics.Tags{"analysis": "metadata-cache", "profile": p.Name,
						"cache": strconv.Itoa(size)},
					map[string]float64{"reduction": r.Reduction, "callback_ratio": r.CallbackRatio})
			}
		}
		fmt.Println("Section 7: directory delegation")
		fmt.Printf("%-8s %12s %12s\n", "trace", "reduction", "recalls/msg")
		for _, p := range profiles {
			r := trace.SimulateDelegation(trace.Synthesize(p))
			fmt.Printf("%-8s %11.1f%% %12.4f\n", p.Name, r.MessageReduction*100, r.RecallRatio)
			rec.Point(0, metrics.SubsysRun,
				metrics.Tags{"analysis": "delegation", "profile": p.Name},
				map[string]float64{"reduction": r.MessageReduction, "recall_ratio": r.RecallRatio})
		}
	}
	if err := sink.Err(); err == nil {
		err = closeSink()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracesim: metrics:", err)
		os.Exit(1)
	}
	if err := prof.Stop(); err != nil {
		fmt.Fprintln(os.Stderr, "tracesim:", err)
		os.Exit(1)
	}
}
