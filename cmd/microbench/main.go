// Command microbench regenerates the paper's micro-benchmark results:
// Tables 2 and 3 (cold/warm-cache message counts for the Table 1 system
// calls), Figure 3 (iSCSI meta-data update aggregation), Figure 4
// (directory-depth sensitivity) and Figure 5 (request-size sensitivity).
//
// Usage:
//
//	microbench -table 2        # cold-cache syscall table
//	microbench -table 3        # warm-cache syscall table
//	microbench -figure 3       # batching curves
//	microbench -figure 4       # depth curves
//	microbench -figure 5       # size curves
//	microbench -all            # everything
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/metrics"
)

func main() {
	table := flag.Int("table", 0, "table to regenerate (2 or 3)")
	figure := flag.Int("figure", 0, "figure to regenerate (3, 4 or 5)")
	all := flag.Bool("all", false, "run every micro-benchmark")
	check := flag.Bool("check", false, "run paper-shape conformance checks on the tables")
	metricsPath := flag.String("metrics", "", "write JSONL telemetry events to this file (see docs/METRICS.md)")
	prof := cliutil.ProfileFlags()
	flag.Parse()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "microbench:", err)
		os.Exit(1)
	}
	if *table != 0 {
		if err := cliutil.Int(*table, "table", 2, 3); err != nil {
			die(err)
		}
	}
	if *figure != 0 {
		if err := cliutil.Int(*figure, "figure", 3, 5); err != nil {
			die(err)
		}
	}
	if err := prof.Start(); err != nil {
		die(err)
	}
	sink, closeSink, err := metrics.OpenFileSink(*metricsPath)
	if err != nil {
		die(err)
	}
	opts := core.Options{Metrics: metrics.NewRecorder(sink, metrics.Tags{"cmd": "microbench"})}

	fails := 0
	runTable := func(n int) {
		var rows []core.SyscallRow
		var err error
		title := ""
		if n == 2 {
			title = "Table 2: network message counts, cold cache"
			rows, err = core.RunTable2(opts)
		} else {
			title = "Table 3: network message counts, warm cache"
			rows, err = core.RunTable3(opts)
		}
		if err != nil {
			die(err)
		}
		core.RenderSyscallTable(os.Stdout, title, rows)
		if *check {
			var checks []core.ShapeCheck
			if n == 2 {
				checks = core.CheckTable2Shapes(rows)
			} else {
				checks = core.CheckTable3Shapes(rows)
			}
			fails += core.RenderChecks(os.Stdout, "Conformance with the paper's claims:", checks)
		}
	}
	defer func() {
		if err := sink.Err(); err == nil {
			err = closeSink()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "microbench: metrics:", err)
			fails++
		}
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "microbench:", err)
			fails++
		}
		if fails > 0 {
			os.Exit(1)
		}
	}()
	runFigure := func(n int) {
		switch n {
		case 3:
			series, err := core.RunFigure3(opts, nil)
			if err != nil {
				die(err)
			}
			core.RenderFigure3(os.Stdout, series)
		case 4:
			series, err := core.RunFigure4(opts, nil)
			if err != nil {
				die(err)
			}
			core.RenderFigure4(os.Stdout, series)
		case 5:
			series, err := core.RunFigure5(opts, nil)
			if err != nil {
				die(err)
			}
			core.RenderFigure5(os.Stdout, series)
		default:
			die(fmt.Errorf("unknown figure %d", n))
		}
	}

	switch {
	case *all:
		runTable(2)
		runTable(3)
		runFigure(3)
		runFigure(4)
		runFigure(5)
	case *table == 2 || *table == 3:
		runTable(*table)
	case *figure != 0:
		runFigure(*figure)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
