// Command replay drives the trace-replay engine: the Section 7 workloads
// (EECS-like and Campus-like synthesized traces, or any JSONL op log)
// replayed open-loop through an N-client cluster on every protocol stack,
// under both the fluid wire model and virtual-time TCP. It reports
// per-op latency percentiles (p50/p90/p99, nearest-rank), the slowest
// client's mean, and aggregate replayed-op throughput.
//
//	go run ./cmd/replay -profile eecs -stacks all
//	go run ./cmd/replay -profile campus -dump campus.jsonl   # export trace
//	go run ./cmd/replay -file campus.jsonl -clients 8        # replay a log
//
// Identical seeds give byte-identical output.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/trace"
)

func main() {
	profile := flag.String("profile", "both", "built-in trace profile (eecs, campus, both)")
	file := flag.String("file", "", "replay a JSONL op log instead of a built-in profile")
	dump := flag.String("dump", "", "write the selected profile's trace as JSONL to this file and exit")
	clients := flag.Int("clients", 4, "cluster size (traced client ids fold onto it)")
	ops := flag.Int("ops", 2000, "max ops replayed per trace (0 = all)")
	dirs := flag.Int("dirs", 64, "directory namespace size (trace dirs fold onto it)")
	stacks := flag.String("stacks", "all", "stacks to sweep (all or nfsv2,nfsv3,nfsv4,iscsi)")
	transports := flag.String("transports", "fluid,tcp", "wire models to sweep (fluid,udp,tcp)")
	conns := flag.Int("conns", 1, "iSCSI MC/S connection count under TCP")
	window := flag.Int("window", 64, "per-connection TCP window cap in KB")
	seed := flag.Int64("seed", 42, "simulation seed")
	metricsPath := flag.String("metrics", "", "write JSONL telemetry events to this file (see docs/METRICS.md)")
	prof := cliutil.ProfileFlags()
	trc := cliutil.TraceFlags()
	flag.Parse()

	if *dump != "" {
		dumpProfile(*profile, *dump)
		return
	}

	if err := cliutil.Int(*clients, "clients", 1, cliutil.MaxMechClients); err != nil {
		fatal(err.Error())
	}
	if err := cliutil.Int(*conns, "conns", 1, cliutil.MaxConns); err != nil {
		fatal(err.Error())
	}
	if *ops < 0 {
		fatal("bad -ops value (must be >= 0; 0 replays everything)")
	}
	if err := prof.Start(); err != nil {
		fatal(err.Error())
	}
	tracer, err := trc.Tracer()
	if err != nil {
		fatal(err.Error())
	}

	sink, closeSink, err := metrics.OpenFileSink(*metricsPath)
	if err != nil {
		fatal(err.Error())
	}
	maxOps := *ops
	if maxOps == 0 {
		maxOps = -1 // core.ReplayConfig spells "everything" as negative
	}
	cfg := core.ReplayConfig{
		Clients:     *clients,
		MaxOps:      maxOps,
		DirMod:      *dirs,
		Conns:       *conns,
		WindowBytes: *window << 10,
		Seed:        *seed,
		Metrics:     metrics.NewRecorder(sink, metrics.Tags{"cmd": "replay"}),
		Tracer:      tracer,
	}
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fatal(err.Error())
		}
		recs, err := trace.ReadJSONL(f)
		f.Close()
		if err != nil {
			fatal(err.Error())
		}
		if len(recs) == 0 {
			fatal("op log " + *file + " is empty")
		}
		cfg.Records = recs
		cfg.RecordsName = *file
	} else {
		cfg.Profiles = parseProfiles(*profile)
	}
	if cfg.Stacks, err = cliutil.Stacks(*stacks); err != nil {
		fatal(err.Error())
	}
	if cfg.Transports, err = cliutil.Transports(*transports); err != nil {
		fatal(err.Error())
	}

	cells, err := core.RunReplay(cfg)
	if err != nil {
		fatal(err.Error())
	}
	core.RenderReplay(os.Stdout, cells)
	if err := trc.Write(); err != nil {
		fatal(err.Error())
	}
	if err := sink.Err(); err == nil {
		err = closeSink()
	}
	if err != nil {
		fatal("metrics: " + err.Error())
	}
	if err := prof.Stop(); err != nil {
		fatal(err.Error())
	}
}

// parseProfiles expands the -profile flag.
func parseProfiles(p string) []string {
	switch strings.ToLower(strings.TrimSpace(p)) {
	case "both", "all", "":
		return core.ReplayProfiles
	case "eecs":
		return []string{"eecs"}
	case "campus":
		return []string{"campus"}
	default:
		fatal("unknown profile " + p + " (eecs, campus, both)")
		return nil
	}
}

// dumpProfile exports a built-in profile's synthesized trace as JSONL.
func dumpProfile(profile, path string) {
	names := parseProfiles(profile)
	if len(names) != 1 {
		fatal("-dump needs exactly one -profile (eecs or campus)")
	}
	var recs []trace.Record
	if names[0] == "eecs" {
		recs = trace.Synthesize(trace.EECS())
	} else {
		recs = trace.Synthesize(trace.Campus())
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err.Error())
	}
	if err := trace.WriteJSONL(f, recs); err != nil {
		f.Close()
		fatal(err.Error())
	}
	if err := f.Close(); err != nil {
		fatal(err.Error())
	}
	fmt.Printf("wrote %d records (%s) to %s\n", len(recs), names[0], path)
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "replay:", msg)
	os.Exit(1)
}
