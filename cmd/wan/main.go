// Command wan runs the congestion-coupled cluster sweep: every client's
// traffic multiplexes through one capacity-limited bottleneck link
// (internal/netqueue) and the sweep crosses {bottleneck capacity x queue
// discipline x per-client RTT/loss mix} over client counts on the
// selected stacks. It is the physically-coupled counterpart of
// cmd/scale: aggregate throughput plateaus at the pipe, per-client
// latency grows with the standing queue, and WAN stragglers contend for
// the same buffer as their LAN peers. Configurations harsh enough to
// abort transport connections render as "collapse" cells rather than
// failing the sweep.
//
//	go run ./cmd/wan -clients 1,2,4 -capacities 12 -mixes lan,straggler
//	go run ./cmd/wan -qdisc drr -transports tcp -metrics wan.jsonl
//
// Identical seeds give byte-identical output.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netqueue"
)

func main() {
	clients := flag.String("clients", "1,2,4,8,16", "comma-separated client counts")
	stacks := flag.String("stacks", "all", "stacks to sweep (all or nfsv2,nfsv3,nfsv4,iscsi)")
	workloads := flag.String("workloads", "seq-write",
		"workloads ("+strings.Join(core.WANWorkloads, ",")+")")
	transports := flag.String("transports", "tcp", "wire models to sweep (fluid,udp,tcp)")
	capacities := flag.String("capacities", "117,12", "bottleneck capacities in MB/s (comma separated)")
	qdisc := flag.String("qdisc", "droptail,drr", "queue disciplines (droptail,drr)")
	mixes := flag.String("mixes", "lan,straggler",
		"per-client RTT/loss mixes ("+strings.Join(core.WANMixes, ",")+")")
	queueKB := flag.Int("queue", 256, "bottleneck buffer per direction in KB")
	conns := flag.Int("conns", 1, "iSCSI MC/S connection count under TCP")
	window := flag.Int("window", 64, "per-connection TCP window cap in KB")
	sizeKB := flag.Int64("size", 1024, "per-client file size in KB")
	seed := flag.Int64("seed", 0, "simulation seed")
	metricsPath := flag.String("metrics", "", "write JSONL telemetry events to this file (see docs/METRICS.md)")
	prof := cliutil.ProfileFlags()
	trc := cliutil.TraceFlags()
	hlt := cliutil.HealthFlags()
	flag.Parse()

	if err := prof.Start(); err != nil {
		fatal(err.Error())
	}
	tracer, err := trc.Tracer()
	if err != nil {
		fatal(err.Error())
	}
	healthCfg, err := hlt.Config(*metricsPath)
	if err != nil {
		fatal(err.Error())
	}
	cfg := core.WANConfig{
		QueueBytes:  *queueKB << 10,
		Conns:       *conns,
		WindowBytes: *window << 10,
		FileSize:    *sizeKB << 10,
		Seed:        *seed,
		Health:      healthCfg,
		Tracer:      tracer,
	}
	if cfg.Counts, err = cliutil.Ints(*clients, "clients", 1, cliutil.MaxMechClients); err != nil {
		fatal(err.Error())
	}
	if cfg.Stacks, err = cliutil.Stacks(*stacks); err != nil {
		fatal(err.Error())
	}
	if cfg.Workloads, err = cliutil.Workloads(*workloads, core.WANWorkloads); err != nil {
		fatal(err.Error())
	}
	if cfg.Transports, err = cliutil.Transports(*transports); err != nil {
		fatal(err.Error())
	}
	caps, err := cliutil.Floats(*capacities, "capacities", 0.125, 100000)
	if err != nil {
		fatal(err.Error())
	}
	for _, mb := range caps {
		cfg.Capacities = append(cfg.Capacities, int64(mb*1e6))
	}
	for _, q := range strings.Split(*qdisc, ",") {
		q = strings.TrimSpace(q)
		if q == "" {
			continue
		}
		d, err := netqueue.ParseDiscipline(q)
		if err != nil {
			fatal(err.Error())
		}
		cfg.Disciplines = append(cfg.Disciplines, d)
	}
	if err := cliutil.Int(*conns, "conns", 1, cliutil.MaxConns); err != nil {
		fatal(err.Error())
	}
	if err := cliutil.Int(*queueKB, "queue", 1, 1<<20); err != nil {
		fatal(err.Error())
	}
	if err := cliutil.Int(*window, "window", 1, 1<<20); err != nil {
		fatal(err.Error())
	}
	if err := cliutil.Int(int(*sizeKB), "size", 1, 1<<20); err != nil {
		fatal(err.Error())
	}
	for _, m := range strings.Split(*mixes, ",") {
		if m = strings.TrimSpace(m); m != "" {
			if _, err := core.MixClients(m, 1); err != nil {
				fatal(err.Error())
			}
			cfg.Mixes = append(cfg.Mixes, m)
		}
	}

	sink, closeSink, err := metrics.OpenFileSink(*metricsPath)
	if err != nil {
		fatal(err.Error())
	}
	cfg.Metrics = metrics.NewRecorder(sink, metrics.Tags{"cmd": "wan"})
	cells, err := core.RunWAN(cfg)
	if err != nil {
		fatal(err.Error())
	}
	core.RenderWAN(os.Stdout, cells)
	if err := trc.Write(); err != nil {
		fatal(err.Error())
	}
	if err := sink.Err(); err == nil {
		err = closeSink()
	}
	if err != nil {
		fatal("metrics: " + err.Error())
	}
	if err := prof.Stop(); err != nil {
		fatal(err.Error())
	}
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "wan:", msg)
	os.Exit(1)
}
