// Command scale runs the multi-client scaling experiment: N concurrent
// clients drive one simulated server on each protocol stack, and the
// table reports aggregate throughput, per-client latency and server CPU
// utilization — the cluster extension of the paper's single-client
// comparison. With -background, counts beyond -foreground run as hybrid
// cells: K mechanistic clients sample the fleet while the rest become
// calibrated fluid load, so sweeps reach 10,000+ clients in seconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/metrics"
)

func main() {
	clients := flag.String("clients", "1,2,4,8,16", "comma-separated client counts")
	workloads := flag.String("workloads", "seq-write,rand-read,postmark",
		"comma-separated workloads ("+strings.Join(core.ScaleWorkloads, ",")+")")
	stacks := flag.String("stacks", "all", "comma-separated stacks (all, nfsv2, nfsv3, nfsv4, iscsi)")
	sizeMB := flag.Int64("size", 4, "per-client file size in MB (seq/rand workloads)")
	pmFiles := flag.Int("pm-files", 50, "per-client PostMark pool size")
	pmTxns := flag.Int("pm-txns", 250, "per-client PostMark transactions")
	seed := flag.Int64("seed", 0, "workload seed")
	background := flag.Bool("background", false,
		"hybrid fleet mode: counts beyond -foreground run as calibrated fluid background load")
	foreground := flag.Int("foreground", 8,
		"mechanistic clients per hybrid cell (with -background)")
	metricsPath := flag.String("metrics", "", "write JSONL telemetry events to this file (see docs/METRICS.md)")
	prof := cliutil.ProfileFlags()
	trc := cliutil.TraceFlags()
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "scale:", err)
		os.Exit(1)
	}
	counts, err := cliutil.ClientCounts(*clients, *background)
	if err != nil {
		fail(err)
	}
	wls, err := cliutil.Workloads(*workloads, core.ScaleWorkloads)
	if err != nil {
		fail(err)
	}
	sts, err := cliutil.Stacks(*stacks)
	if err != nil {
		fail(err)
	}
	fg := 0
	if *background {
		if err := cliutil.Int(*foreground, "foreground", 1, cliutil.MaxMechClients); err != nil {
			fail(err)
		}
		fg = *foreground
	}
	if err := prof.Start(); err != nil {
		fail(err)
	}
	tracer, err := trc.Tracer()
	if err != nil {
		fail(err)
	}

	sink, closeSink, err := metrics.OpenFileSink(*metricsPath)
	if err != nil {
		fail(err)
	}
	cells, err := core.RunScaling(core.ScaleConfig{
		Counts:               counts,
		Workloads:            wls,
		Stacks:               sts,
		FileSize:             *sizeMB << 20,
		PostMarkFiles:        *pmFiles,
		PostMarkTransactions: *pmTxns,
		Seed:                 *seed,
		Foreground:           fg,
		Metrics:              metrics.NewRecorder(sink, metrics.Tags{"cmd": "scale"}),
		Tracer:               tracer,
	})
	if err != nil {
		fail(err)
	}
	core.RenderScaling(os.Stdout, cells)
	if err := trc.Write(); err != nil {
		fail(err)
	}
	if err := sink.Err(); err == nil {
		err = closeSink()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "scale: metrics:", err)
		os.Exit(1)
	}
	if err := prof.Stop(); err != nil {
		fail(err)
	}
}
