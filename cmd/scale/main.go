// Command scale runs the multi-client scaling experiment: N concurrent
// clients (1..16) drive one simulated server on each of the four protocol
// stacks, and the table reports aggregate throughput, per-client latency
// and server CPU utilization — the cluster extension of the paper's
// single-client comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/metrics"
)

func main() {
	clients := flag.String("clients", "1,2,4,8,16", "comma-separated client counts")
	workloads := flag.String("workloads", "seq-write,rand-read,postmark",
		"comma-separated workloads ("+strings.Join(core.ScaleWorkloads, ",")+")")
	sizeMB := flag.Int64("size", 4, "per-client file size in MB (seq/rand workloads)")
	pmFiles := flag.Int("pm-files", 50, "per-client PostMark pool size")
	pmTxns := flag.Int("pm-txns", 250, "per-client PostMark transactions")
	seed := flag.Int64("seed", 0, "workload seed")
	metricsPath := flag.String("metrics", "", "write JSONL telemetry events to this file (see docs/METRICS.md)")
	flag.Parse()

	counts, err := cliutil.Ints(*clients, "clients", 1, cliutil.MaxClients)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scale:", err)
		os.Exit(1)
	}
	wls, err := cliutil.Workloads(*workloads, core.ScaleWorkloads)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scale:", err)
		os.Exit(1)
	}

	sink, closeSink, err := metrics.OpenFileSink(*metricsPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scale:", err)
		os.Exit(1)
	}
	cells, err := core.RunScaling(core.ScaleConfig{
		Counts:               counts,
		Workloads:            wls,
		FileSize:             *sizeMB << 20,
		PostMarkFiles:        *pmFiles,
		PostMarkTransactions: *pmTxns,
		Seed:                 *seed,
		Metrics:              metrics.NewRecorder(sink, metrics.Tags{"cmd": "scale"}),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "scale:", err)
		os.Exit(1)
	}
	core.RenderScaling(os.Stdout, cells)
	if err := sink.Err(); err == nil {
		err = closeSink()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "scale: metrics:", err)
		os.Exit(1)
	}
}
