// Command contend runs the cross-client sharing sweep: conflict-heavy
// workloads — lock ping-pong, locked shared appends, a writer against
// readers — over one shared object per stack, reporting locked-op
// throughput, lock grants and denied polls, and per-client wait. NFS
// cells exercise the server's byte-range lock manager; iSCSI cells
// exercise whole-LUN persistent reservations. The same seed yields a
// byte-identical metric stream.
//
//	go run ./cmd/contend
//	go run ./cmd/contend -workloads pingpong,append -stacks nfsv3,iscsi
//	go run ./cmd/contend -clients 8 -iters 100 -metrics contend.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/metrics"
)

func main() {
	workloads := flag.String("workloads", "all",
		"contention workloads (all or pingpong,append,readerwriter)")
	stacks := flag.String("stacks", "all", "stacks to sweep (all or nfsv2,nfsv3,nfsv4,iscsi)")
	transports := flag.String("transports", "fluid,tcp", "wire models to sweep (fluid,udp,tcp)")
	clients := flag.Int("clients", 4, "cluster size contending on the shared object")
	iters := flag.Int("iters", 50, "locked operations per client")
	record := flag.Int("record", 4096, "shared record size in bytes")
	poll := flag.Duration("poll", 2*time.Millisecond, "denied-lock poll backoff")
	conns := flag.Int("conns", 1, "iSCSI MC/S connection count under TCP")
	window := flag.Int("window", 64, "per-connection TCP window cap in KB")
	blocks := flag.Int64("blocks", 16384, "volume size in 4 KB blocks")
	seed := flag.Int64("seed", 0, "simulation seed")
	metricsPath := flag.String("metrics", "", "write JSONL telemetry events to this file (see docs/METRICS.md)")
	prof := cliutil.ProfileFlags()
	trc := cliutil.TraceFlags()
	flag.Parse()

	if err := prof.Start(); err != nil {
		fatal(err.Error())
	}
	tracer, err := trc.Tracer()
	if err != nil {
		fatal(err.Error())
	}
	cfg := core.ContendConfig{
		Clients:      *clients,
		Iters:        *iters,
		RecordSize:   *record,
		PollInterval: *poll,
		Conns:        *conns,
		WindowBytes:  *window << 10,
		DeviceBlocks: *blocks,
		Seed:         *seed,
		Tracer:       tracer,
	}
	if strings.ToLower(strings.TrimSpace(*workloads)) != "all" {
		known := map[string]bool{}
		for _, wl := range core.ContendWorkloads {
			known[wl] = true
		}
		for _, s := range strings.Split(*workloads, ",") {
			if s = strings.ToLower(strings.TrimSpace(s)); s == "" {
				continue
			}
			if !known[s] {
				fatal(fmt.Sprintf("unknown workload %q (want %s)",
					s, strings.Join(core.ContendWorkloads, ",")))
			}
			cfg.Workloads = append(cfg.Workloads, s)
		}
	}
	if cfg.Stacks, err = cliutil.Stacks(*stacks); err != nil {
		fatal(err.Error())
	}
	if cfg.Transports, err = cliutil.Transports(*transports); err != nil {
		fatal(err.Error())
	}
	if err := cliutil.Int(*clients, "clients", 2, cliutil.MaxMechClients); err != nil {
		fatal(err.Error())
	}
	if err := cliutil.Int(*iters, "iters", 1, 1<<20); err != nil {
		fatal(err.Error())
	}
	if err := cliutil.Int(*record, "record", 1, 1<<20); err != nil {
		fatal(err.Error())
	}
	if err := cliutil.Int(*conns, "conns", 1, cliutil.MaxConns); err != nil {
		fatal(err.Error())
	}
	if err := cliutil.Int(*window, "window", 1, 1<<20); err != nil {
		fatal(err.Error())
	}
	if err := cliutil.Int(int(*blocks), "blocks", 1024, 1<<30); err != nil {
		fatal(err.Error())
	}
	if *poll <= 0 {
		fatal("bad -poll: duration must be positive")
	}

	sink, closeSink, err := metrics.OpenFileSink(*metricsPath)
	if err != nil {
		fatal(err.Error())
	}
	cfg.Metrics = metrics.NewRecorder(sink, metrics.Tags{"cmd": "contend"})
	cells, err := core.RunContention(cfg)
	if err != nil {
		fatal(err.Error())
	}
	core.RenderContention(os.Stdout, cells)
	if err := trc.Write(); err != nil {
		fatal(err.Error())
	}
	if err := sink.Err(); err == nil {
		err = closeSink()
	}
	if err != nil {
		fatal("metrics: " + err.Error())
	}
	if err := prof.Stop(); err != nil {
		fatal(err.Error())
	}
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "contend:", msg)
	os.Exit(1)
}
