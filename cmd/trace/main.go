// Command trace runs one traced {stack x transport x workload} cell and
// shows where its operations spent their virtual time: every syscall
// becomes a span tree crossing the cache, RPC/iSCSI, transport, link,
// CPU and disk layers, and the critical-path analyzer bills each
// nanosecond of each op to exactly one of them. The table reports
// per-layer billed time (mean/p50/p99 across ops) with each layer's
// share of total latency — the mechanized version of the paper's
// Section 5/6 packet-trace breakdowns.
//
//	go run ./cmd/trace -stack nfsv3 -workload seq-read -trace spans.jsonl
//	go run ./cmd/trace -stack iscsi -conns 4 -chrome trace.json
//	go run ./cmd/trace -from spans.jsonl -chrome trace.json   # re-analyze
//
// -trace writes the validated span JSONL (docs/TRACING.md); -chrome
// writes Chrome trace_event JSON loadable in Perfetto or
// chrome://tracing; -from re-analyzes an existing JSONL stream (also
// schema-validating it) instead of running a cell. Identical seeds give
// byte-identical spans.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/testbed"
	"repro/internal/tracing"
	"repro/internal/workload"
)

func main() {
	stack := flag.String("stack", "nfsv3", "protocol stack (nfsv2, nfsv3, nfsv4, iscsi)")
	transport := flag.String("transport", "tcp", "wire model (fluid, udp, tcp)")
	wl := flag.String("workload", "seq-read",
		"workload ("+strings.Join(core.TransportWorkloads, ",")+")")
	sizeKB := flag.Int64("size", 256, "file size in KB per workload pass")
	chunk := flag.Int("chunk", 4096, "per-syscall unit in bytes")
	rtt := flag.Duration("rtt", 200*time.Microsecond, "network round-trip time")
	loss := flag.Float64("loss", 0, "frame loss rate in %")
	conns := flag.Int("conns", 1, "iSCSI MC/S connection count under TCP")
	window := flag.Int("window", 64, "per-connection TCP window cap in KB")
	seed := flag.Int64("seed", 42, "simulation seed")
	sample := flag.Int64("trace-sample", 1, "trace one op in every N")
	slow := flag.Duration("trace-slow", 0, "trace only ops at least this slow, e.g. 500us")
	tracePath := flag.String("trace", "", "write the span JSONL to this file (see docs/TRACING.md)")
	chromePath := flag.String("chrome", "", "write Chrome trace_event JSON (Perfetto-loadable) to this file")
	from := flag.String("from", "", "analyze an existing span JSONL instead of running a cell")
	flag.Parse()

	var spans []tracing.Span
	label := ""
	if *from != "" {
		f, err := os.Open(*from)
		if err != nil {
			fatal(err.Error())
		}
		spans, err = tracing.ReadSpans(f)
		f.Close()
		if err != nil {
			fatal(*from + ": " + err.Error())
		}
		label = *from
	} else {
		var err error
		spans, err = runCell(cellConfig{
			stack:     *stack,
			transport: *transport,
			workload:  *wl,
			fileSize:  *sizeKB << 10,
			chunk:     *chunk,
			rtt:       *rtt,
			loss:      *loss / 100,
			conns:     *conns,
			window:    *window << 10,
			seed:      *seed,
			sample:    *sample,
			slow:      *slow,
		})
		if err != nil {
			fatal(err.Error())
		}
		label = fmt.Sprintf("%s/%s %s", *stack, *transport, *wl)
	}

	if *tracePath != "" {
		if err := writeFile(*tracePath, func(f *os.File) error {
			return tracing.WriteSpans(f, spans)
		}); err != nil {
			fatal("-trace: " + err.Error())
		}
	}
	if *chromePath != "" {
		if err := writeFile(*chromePath, func(f *os.File) error {
			return tracing.WriteChrome(f, spans)
		}); err != nil {
			fatal("-chrome: " + err.Error())
		}
	}
	render(os.Stdout, label, spans)
}

// cellConfig holds the parsed cell axes.
type cellConfig struct {
	stack, transport, workload string
	fileSize                   int64
	chunk                      int
	rtt                        time.Duration
	loss                       float64
	conns, window              int
	seed, sample               int64
	slow                       time.Duration
}

// runCell builds one traced testbed and drives one workload through it.
func runCell(c cellConfig) ([]tracing.Span, error) {
	stacks, err := cliutil.Stacks(c.stack)
	if err != nil {
		return nil, err
	}
	if len(stacks) != 1 {
		return nil, fmt.Errorf("-stack: need exactly one stack, got %q", c.stack)
	}
	transports, err := cliutil.Transports(c.transport)
	if err != nil {
		return nil, err
	}
	if len(transports) != 1 {
		return nil, fmt.Errorf("-transport: need exactly one wire model, got %q", c.transport)
	}
	if c.sample < 1 {
		return nil, fmt.Errorf("-trace-sample: %d must be at least 1", c.sample)
	}
	if c.slow < 0 {
		return nil, fmt.Errorf("-trace-slow: %v must not be negative", c.slow)
	}
	blocks := int64(16384)
	if need := c.fileSize / 4096 * 4; need > blocks {
		blocks = need
	}
	tracer := tracing.New(tracing.Config{Every: c.sample, Slow: c.slow})
	tb, err := testbed.New(testbed.Config{
		Kind:         stacks[0],
		DeviceBlocks: blocks,
		RTT:          c.rtt,
		LossRate:     c.loss,
		Seed:         c.seed,
		Transport:    transports[0],
		Conns:        c.conns,
		WindowBytes:  c.window,
		Tracer:       tracer,
	})
	if err != nil {
		return nil, err
	}
	src := workload.SeqRandConfig{FileSize: c.fileSize, ChunkSize: c.chunk, Seed: c.seed}
	switch c.workload {
	case "seq-read":
		_, err = workload.SequentialRead(tb, src)
	case "seq-write":
		_, err = workload.SequentialWrite(tb, src)
	case "rand-read":
		_, err = workload.RandomRead(tb, src)
	case "rand-write":
		_, err = workload.RandomWrite(tb, src)
	default:
		return nil, fmt.Errorf("unknown workload %q (have %s)",
			c.workload, strings.Join(core.TransportWorkloads, ", "))
	}
	if err != nil {
		return nil, err
	}
	return tracer.Spans(), nil
}

// render prints the per-layer critical-path table: for every traced op the
// analyzer bills each nanosecond to one layer, and the table aggregates
// the per-op bills as mean/p50/p99 with each layer's share of the total.
func render(w *os.File, label string, spans []tracing.Span) {
	roots := tracing.Roots(spans)
	fmt.Fprintf(w, "Critical-path attribution: %s (%d spans, %d ops)\n",
		label, len(spans), len(roots))
	if len(roots) == 0 {
		fmt.Fprintln(w, "no traced ops (sampled out?)")
		return
	}
	perLayer := make(map[string][]time.Duration, len(tracing.Layers))
	var latencies []time.Duration
	var total time.Duration
	for _, r := range roots {
		attr, err := tracing.CriticalPath(spans, r.ID)
		if err != nil {
			fatal(err.Error())
		}
		for _, l := range tracing.Layers {
			perLayer[l] = append(perLayer[l], attr[l])
		}
		latencies = append(latencies, r.End-r.Start)
		total += r.End - r.Start
	}
	fmt.Fprintf(w, "%-12s %10s %10s %10s %7s\n", "layer", "mean", "p50", "p99", "share")
	for _, l := range tracing.Layers {
		var sum time.Duration
		for _, d := range perLayer[l] {
			sum += d
		}
		if sum == 0 {
			continue
		}
		fmt.Fprintf(w, "%-12s %10s %10s %10s %6.1f%%\n", l,
			fmtDur(sum/time.Duration(len(roots))),
			fmtDur(percentile(perLayer[l], 50)),
			fmtDur(percentile(perLayer[l], 99)),
			100*float64(sum)/float64(total))
	}
	fmt.Fprintf(w, "%-12s %10s %10s %10s %6.1f%%\n", "op latency",
		fmtDur(total/time.Duration(len(roots))),
		fmtDur(percentile(latencies, 50)),
		fmtDur(percentile(latencies, 99)),
		100.0)
}

// percentile is the nearest-rank p-th percentile (copies before sorting).
func percentile(ds []time.Duration, p int) time.Duration {
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := (len(s)*p + 99) / 100
	if rank < 1 {
		rank = 1
	}
	return s[rank-1]
}

// fmtDur rounds for the table without losing sub-microsecond bills.
func fmtDur(d time.Duration) string {
	if d >= time.Millisecond {
		return d.Round(time.Microsecond).String()
	}
	return d.Round(10 * time.Nanosecond).String()
}

// writeFile creates path, runs fn on it, and closes it, reporting the
// first error.
func writeFile(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "trace:", msg)
	os.Exit(1)
}
