// Command latency regenerates Figure 6: the NISTNet wide-area experiment
// sweeping round-trip latency from 10 to 90 ms and measuring sequential
// and random read/write completion times on NFS v3 and iSCSI. The -loss
// flag injects frame loss on the emulated WAN path, extending the sweep
// to lossy long-haul links (see cmd/transport for the full transport
// cross-product).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

func main() {
	sizeMB := flag.Int64("size", 128, "file size in MB (paper: 128)")
	step := flag.Int("step", 20, "RTT step in ms (paper plots 10ms steps; 1..80)")
	loss := flag.Float64("loss", 0, "frame loss rate in % (0..50)")
	metricsPath := flag.String("metrics", "", "write JSONL telemetry events to this file (see docs/METRICS.md)")
	flag.Parse()

	if *step < 1 || *step > 80 {
		fmt.Fprintf(os.Stderr, "latency: -step %d out of range [1, 80]\n", *step)
		os.Exit(2)
	}
	if *sizeMB < 1 {
		fmt.Fprintf(os.Stderr, "latency: -size %d must be at least 1 MB\n", *sizeMB)
		os.Exit(2)
	}
	if *loss < 0 || *loss > 50 {
		fmt.Fprintf(os.Stderr, "latency: -loss %g out of range [0, 50]\n", *loss)
		os.Exit(2)
	}

	sink, closeSink, err := metrics.OpenFileSink(*metricsPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "latency:", err)
		os.Exit(1)
	}

	var rtts []time.Duration
	for ms := 10; ms <= 90; ms += *step {
		rtts = append(rtts, time.Duration(ms)*time.Millisecond)
	}
	points, err := core.RunFigure6(core.Options{
		LossRate: *loss / 100,
		Metrics:  metrics.NewRecorder(sink, metrics.Tags{"cmd": "latency"}),
	}, *sizeMB<<20, rtts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "latency:", err)
		os.Exit(1)
	}
	if *loss > 0 {
		fmt.Printf("Figure 6 with %.1f%% frame loss injected on the WAN path\n\n", *loss)
	}
	core.RenderFigure6(os.Stdout, points)
	if err := sink.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "latency: metrics:", err)
		os.Exit(1)
	}
	if err := closeSink(); err != nil {
		fmt.Fprintln(os.Stderr, "latency: metrics:", err)
		os.Exit(1)
	}
}
