// Command latency regenerates Figure 6: the NISTNet wide-area experiment
// sweeping round-trip latency from 10 to 90 ms and measuring sequential
// and random read/write completion times on NFS v3 and iSCSI.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
)

func main() {
	sizeMB := flag.Int64("size", 128, "file size in MB (paper: 128)")
	step := flag.Int("step", 20, "RTT step in ms (paper plots 10ms steps)")
	flag.Parse()

	var rtts []time.Duration
	for ms := 10; ms <= 90; ms += *step {
		rtts = append(rtts, time.Duration(ms)*time.Millisecond)
	}
	points, err := core.RunFigure6(core.Options{}, *sizeMB<<20, rtts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "latency:", err)
		os.Exit(1)
	}
	core.RenderFigure6(os.Stdout, points)
}
