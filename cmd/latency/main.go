// Command latency regenerates Figure 6: the NISTNet wide-area experiment
// sweeping round-trip latency from 10 to 90 ms and measuring sequential
// and random read/write completion times on NFS v3 and iSCSI. The -loss
// flag injects frame loss on the emulated WAN path, extending the sweep
// to lossy long-haul links (see cmd/transport for the full transport
// cross-product).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/metrics"
)

func main() {
	sizeMB := flag.Int64("size", 128, "file size in MB (paper: 128)")
	step := flag.Int("step", 20, "RTT step in ms (paper plots 10ms steps; 1..80)")
	loss := flag.Float64("loss", 0, "frame loss rate in % (0..50)")
	metricsPath := flag.String("metrics", "", "write JSONL telemetry events to this file (see docs/METRICS.md)")
	prof := cliutil.ProfileFlags()
	flag.Parse()

	fatal := func(msg string) {
		fmt.Fprintln(os.Stderr, "latency:", msg)
		os.Exit(1)
	}
	if err := cliutil.Int(*step, "step", 1, 80); err != nil {
		fatal(err.Error())
	}
	if err := cliutil.Int(int(*sizeMB), "size", 1, 16384); err != nil {
		fatal(err.Error())
	}
	if err := cliutil.Float(*loss, "loss", 0, cliutil.MaxLossPercent); err != nil {
		fatal(err.Error())
	}
	if err := prof.Start(); err != nil {
		fatal(err.Error())
	}

	sink, closeSink, err := metrics.OpenFileSink(*metricsPath)
	if err != nil {
		fatal(err.Error())
	}

	var rtts []time.Duration
	for ms := 10; ms <= 90; ms += *step {
		rtts = append(rtts, time.Duration(ms)*time.Millisecond)
	}
	points, err := core.RunFigure6(core.Options{
		LossRate: *loss / 100,
		Metrics:  metrics.NewRecorder(sink, metrics.Tags{"cmd": "latency"}),
	}, *sizeMB<<20, rtts)
	if err != nil {
		fatal(err.Error())
	}
	if *loss > 0 {
		fmt.Printf("Figure 6 with %.1f%% frame loss injected on the WAN path\n\n", *loss)
	}
	core.RenderFigure6(os.Stdout, points)
	if err := sink.Err(); err == nil {
		err = closeSink()
	}
	if err != nil {
		fatal("metrics: " + err.Error())
	}
	if err := prof.Stop(); err != nil {
		fatal(err.Error())
	}
}
