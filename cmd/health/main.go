// Command health runs the detection-quality sweep: for every selected
// stack and transport it first runs a fault-free control cell (the
// fault plan's timeline replayed without firing, so any alert is a
// false positive by construction), then replays each fault family with
// the SLO health monitor attached, scoring the alert timeline against
// the fault's ground truth — time-to-detect, time-to-resolve, false
// positives and negatives per cell. The same seed yields a
// byte-identical gauge stream and alert timeline.
//
//	go run ./cmd/health
//	go run ./cmd/health -families server-crash -stacks nfsv3,iscsi
//	go run ./cmd/health -slo objectives.json -metrics health.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/health"
	"repro/internal/metrics"
)

func main() {
	families := flag.String("families", "all",
		"fault families (all or server-crash,disk-fail,link-flap,client-crash)")
	stacks := flag.String("stacks", "all", "stacks to sweep (all or nfsv2,nfsv3,nfsv4,iscsi)")
	transports := flag.String("transports", "fluid,tcp", "wire models to sweep (fluid,udp,tcp)")
	clients := flag.Int("clients", 2, "cluster size (a victim and witnesses)")
	warmup := flag.Duration("warmup", time.Second, "fault-free lead-in before the first inject")
	outage := flag.Duration("outage", 2*time.Second, "inject-to-heal distance per fault")
	flaps := flag.Int("flaps", 3, "link-flap cycle count")
	victim := flag.Int("victim", 0, "victim client / array member index")
	conns := flag.Int("conns", 1, "iSCSI MC/S connection count under TCP")
	window := flag.Int("window", 64, "per-connection TCP window cap in KB")
	blocks := flag.Int64("blocks", 16384, "volume size in 4 KB blocks")
	seed := flag.Int64("seed", 0, "simulation seed (drives fault-instant jitter)")
	slo := flag.String("slo", "",
		"SLO spec JSON (see docs/HEALTH.md; default: the built-in objectives)")
	interval := flag.Duration("interval", 0,
		"gauge scrape period (default 100ms, or the spec's interval)")
	cooldown := flag.Duration("cooldown", core.DefaultHealthCooldown,
		"run past the last heal this long so resolves land in-cell")
	metricsPath := flag.String("metrics", "", "write JSONL telemetry events to this file (see docs/METRICS.md)")
	prof := cliutil.ProfileFlags()
	trc := cliutil.TraceFlags()
	flag.Parse()

	if err := prof.Start(); err != nil {
		fatal(err.Error())
	}
	tracer, err := trc.Tracer()
	if err != nil {
		fatal(err.Error())
	}
	cfg := core.HealthConfig{
		Clients:      *clients,
		Warmup:       *warmup,
		Outage:       *outage,
		Flaps:        *flaps,
		Victim:       *victim,
		Conns:        *conns,
		WindowBytes:  *window << 10,
		DeviceBlocks: *blocks,
		Seed:         *seed,
		Interval:     *interval,
		Cooldown:     *cooldown,
		Tracer:       tracer,
	}
	if *slo != "" {
		spec, err := health.LoadSpec(*slo)
		if err != nil {
			fatal(err.Error())
		}
		cfg.Objectives = spec.Objectives
		if cfg.Interval == 0 {
			cfg.Interval = spec.Interval
		}
	}
	if strings.ToLower(strings.TrimSpace(*families)) != "all" {
		for _, s := range strings.Split(*families, ",") {
			if s = strings.TrimSpace(s); s == "" {
				continue
			}
			f, err := fault.ParseFamily(s)
			if err != nil {
				fatal(err.Error())
			}
			cfg.Families = append(cfg.Families, f)
		}
	}
	if cfg.Stacks, err = cliutil.Stacks(*stacks); err != nil {
		fatal(err.Error())
	}
	if cfg.Transports, err = cliutil.Transports(*transports); err != nil {
		fatal(err.Error())
	}
	if err := cliutil.Int(*clients, "clients", 1, cliutil.MaxMechClients); err != nil {
		fatal(err.Error())
	}
	if err := cliutil.Int(*flaps, "flaps", 1, 64); err != nil {
		fatal(err.Error())
	}
	if err := cliutil.Int(*victim, "victim", 0, cliutil.MaxMechClients); err != nil {
		fatal(err.Error())
	}
	if err := cliutil.Int(*conns, "conns", 1, cliutil.MaxConns); err != nil {
		fatal(err.Error())
	}
	if err := cliutil.Int(*window, "window", 1, 1<<20); err != nil {
		fatal(err.Error())
	}
	if err := cliutil.Int(int(*blocks), "blocks", 1024, 1<<30); err != nil {
		fatal(err.Error())
	}
	if *warmup <= 0 || *outage <= 0 {
		fatal("bad -warmup/-outage: durations must be positive")
	}
	if *interval < 0 || *cooldown <= 0 {
		fatal("bad -interval/-cooldown: durations must be positive")
	}

	sink, closeSink, err := metrics.OpenFileSink(*metricsPath)
	if err != nil {
		fatal(err.Error())
	}
	cfg.Metrics = metrics.NewRecorder(sink, metrics.Tags{"cmd": "health"})
	cells, err := core.RunHealth(cfg)
	if err != nil {
		fatal(err.Error())
	}
	core.RenderHealth(os.Stdout, cells)
	if err := trc.Write(); err != nil {
		fatal(err.Error())
	}
	if err := sink.Err(); err == nil {
		err = closeSink()
	}
	if err != nil {
		fatal("metrics: " + err.Error())
	}
	if err := prof.Stop(); err != nil {
		fatal(err.Error())
	}
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "health:", msg)
	os.Exit(1)
}
