// Command macrobench regenerates the database and shell macro-benchmarks:
// Table 6 (TPC-C), Table 7 (TPC-H), Table 8 (tar/ls/compile/rm) and the
// CPU utilization Tables 9 and 10.
//
// Usage:
//
//	macrobench -bench tpcc
//	macrobench -bench tpch
//	macrobench -bench kernel
//	macrobench -cpu
//	macrobench -all
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/metrics"
)

func main() {
	bench := flag.String("bench", "", "benchmark: tpcc, tpch or kernel")
	cpu := flag.Bool("cpu", false, "regenerate CPU utilization tables 9 and 10")
	all := flag.Bool("all", false, "run everything")
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	metricsPath := flag.String("metrics", "", "write JSONL telemetry events to this file (see docs/METRICS.md)")
	prof := cliutil.ProfileFlags()
	flag.Parse()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "macrobench:", err)
		os.Exit(1)
	}
	if err := cliutil.Float(*scale, "scale", 0.01, 100); err != nil {
		die(err)
	}
	if err := prof.Start(); err != nil {
		die(err)
	}
	sink, closeSink, err := metrics.OpenFileSink(*metricsPath)
	if err != nil {
		die(err)
	}
	opts := core.Options{Metrics: metrics.NewRecorder(sink, metrics.Tags{"cmd": "macrobench"})}
	s := core.MacroScale(*scale)

	runTPCC := func() {
		row, err := core.RunTable6(opts, s)
		if err != nil {
			die(err)
		}
		fmt.Println("Table 6:")
		core.RenderTPC(os.Stdout, row, "tpmC")
	}
	runTPCH := func() {
		row, err := core.RunTable7(opts, s)
		if err != nil {
			die(err)
		}
		fmt.Println("Table 7:")
		core.RenderTPC(os.Stdout, row, "QphH")
	}
	runKernel := func() {
		rows, err := core.RunTable8(opts, s)
		if err != nil {
			die(err)
		}
		core.RenderTable8(os.Stdout, rows)
	}
	runCPU := func() {
		rows, err := core.RunTable9And10(opts, s)
		if err != nil {
			die(err)
		}
		core.RenderCPUTables(os.Stdout, rows)
	}

	switch {
	case *all:
		runTPCC()
		runTPCH()
		runKernel()
		runCPU()
	case *cpu:
		runCPU()
	case *bench == "tpcc":
		runTPCC()
	case *bench == "tpch":
		runTPCH()
	case *bench == "kernel":
		runKernel()
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err := sink.Err(); err == nil {
		err = closeSink()
	}
	if err != nil {
		die(fmt.Errorf("metrics: %w", err))
	}
	if err := prof.Stop(); err != nil {
		die(err)
	}
}
