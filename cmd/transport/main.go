// Command transport runs the virtual-time TCP transport sweep: every
// stack's wire traffic rides the tcpsim model (NFS additionally compares
// its UDP datagram path) across {loss rate x RTT x window x connection
// count}. It is the mechanistic successor of the Figure 6 experiment:
// iSCSI scales MC/S connections the way Kumar et al. measured, and the
// window axis is the rmem/wmem knob from the paper's Section 3.1.
//
// Identical seeds give byte-identical output.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/metrics"
)

func main() {
	size := flag.Int64("size", 2, "file size in MB per workload pass")
	chunk := flag.Int("chunk", 4096, "per-syscall unit in bytes")
	rtts := flag.String("rtts", "0.2,40", "RTTs to sweep, in ms (comma separated)")
	losses := flag.String("loss", "0,1", "frame loss rates to sweep, in % (comma separated)")
	windows := flag.String("windows", "64", "per-connection TCP window caps, in KB (comma separated)")
	conns := flag.String("conns", "1,2,4", "iSCSI MC/S connection counts (comma separated)")
	stacks := flag.String("stacks", "nfsv3,iscsi", "stacks to sweep (nfsv2,nfsv3,nfsv4,iscsi)")
	workloads := flag.String("workloads", "seq-read,seq-write",
		"workloads ("+strings.Join(core.TransportWorkloads, ",")+")")
	seed := flag.Int64("seed", 42, "simulation seed")
	metricsPath := flag.String("metrics", "", "write JSONL telemetry events to this file (see docs/METRICS.md)")
	prof := cliutil.ProfileFlags()
	trc := cliutil.TraceFlags()
	flag.Parse()

	if err := prof.Start(); err != nil {
		fatal(err.Error())
	}
	tracer, err := trc.Tracer()
	if err != nil {
		fatal(err.Error())
	}
	sink, closeSink, err := metrics.OpenFileSink(*metricsPath)
	if err != nil {
		fatal(err.Error())
	}
	cfg := core.TransportConfig{
		FileSize:  *size << 20,
		ChunkSize: *chunk,
		Seed:      *seed,
		Metrics:   metrics.NewRecorder(sink, metrics.Tags{"cmd": "transport"}),
		Tracer:    tracer,
	}
	rttMs, err := cliutil.Floats(*rtts, "rtts", 0, 10000)
	if err != nil {
		fatal(err.Error())
	}
	for _, ms := range rttMs {
		cfg.RTTs = append(cfg.RTTs, time.Duration(ms*float64(time.Millisecond)))
	}
	if cfg.LossRates, err = cliutil.LossPercents(*losses, "loss"); err != nil {
		fatal(err.Error())
	}
	windowKB, err := cliutil.Floats(*windows, "windows", 1, 1<<20)
	if err != nil {
		fatal(err.Error())
	}
	for _, kb := range windowKB {
		cfg.Windows = append(cfg.Windows, int(kb)<<10)
	}
	connCounts, err := cliutil.Ints(*conns, "conns", 1, cliutil.MaxConns)
	if err != nil {
		fatal(err.Error())
	}
	cfg.Conns = connCounts
	if cfg.Stacks, err = cliutil.Stacks(*stacks); err != nil {
		fatal(err.Error())
	}
	if cfg.Workloads, err = cliutil.Workloads(*workloads, core.TransportWorkloads); err != nil {
		fatal(err.Error())
	}

	cells, err := core.RunTransport(cfg)
	if err != nil {
		fatal(err.Error())
	}
	core.RenderTransport(os.Stdout, cells)
	if err := trc.Write(); err != nil {
		fatal(err.Error())
	}
	if err := sink.Err(); err == nil {
		err = closeSink()
	}
	if err != nil {
		fatal("metrics: " + err.Error())
	}
	if err := prof.Stop(); err != nil {
		fatal(err.Error())
	}
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "transport:", msg)
	os.Exit(1)
}
