// Command transport runs the virtual-time TCP transport sweep: every
// stack's wire traffic rides the tcpsim model (NFS additionally compares
// its UDP datagram path) across {loss rate x RTT x window x connection
// count}. It is the mechanistic successor of the Figure 6 experiment:
// iSCSI scales MC/S connections the way Kumar et al. measured, and the
// window axis is the rmem/wmem knob from the paper's Section 3.1.
//
// Identical seeds give byte-identical output.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

func main() {
	size := flag.Int64("size", 2, "file size in MB per workload pass")
	chunk := flag.Int("chunk", 4096, "per-syscall unit in bytes")
	rtts := flag.String("rtts", "0.2,40", "RTTs to sweep, in ms (comma separated)")
	losses := flag.String("loss", "0,1", "frame loss rates to sweep, in % (comma separated)")
	windows := flag.String("windows", "64", "per-connection TCP window caps, in KB (comma separated)")
	conns := flag.String("conns", "1,2,4", "iSCSI MC/S connection counts (comma separated)")
	stacks := flag.String("stacks", "nfsv3,iscsi", "stacks to sweep (nfsv2,nfsv3,nfsv4,iscsi)")
	workloads := flag.String("workloads", "seq-read,seq-write",
		"workloads ("+strings.Join(core.TransportWorkloads, ",")+")")
	seed := flag.Int64("seed", 42, "simulation seed")
	metricsPath := flag.String("metrics", "", "write JSONL telemetry events to this file (see docs/METRICS.md)")
	flag.Parse()

	sink, closeSink, err := metrics.OpenFileSink(*metricsPath)
	if err != nil {
		fatal(err.Error())
	}
	cfg := core.TransportConfig{
		FileSize:  *size << 20,
		ChunkSize: *chunk,
		Seed:      *seed,
		Metrics:   metrics.NewRecorder(sink, metrics.Tags{"cmd": "transport"}),
	}
	for _, ms := range floats(*rtts, "rtts") {
		cfg.RTTs = append(cfg.RTTs, time.Duration(ms*float64(time.Millisecond)))
	}
	for _, p := range floats(*losses, "loss") {
		if p > 50 {
			fatal(fmt.Sprintf("-loss %g out of range [0, 50]", p))
		}
		cfg.LossRates = append(cfg.LossRates, p/100)
	}
	for _, kb := range floats(*windows, "windows") {
		cfg.Windows = append(cfg.Windows, int(kb)<<10)
	}
	for _, n := range floats(*conns, "conns") {
		if n < 1 {
			fatal("conns must be >= 1")
		}
		cfg.Conns = append(cfg.Conns, int(n))
	}
	for _, s := range strings.Split(*stacks, ",") {
		switch strings.ToLower(strings.TrimSpace(s)) {
		case "nfsv2":
			cfg.Stacks = append(cfg.Stacks, core.NFSv2)
		case "nfsv3":
			cfg.Stacks = append(cfg.Stacks, core.NFSv3)
		case "nfsv4":
			cfg.Stacks = append(cfg.Stacks, core.NFSv4)
		case "iscsi":
			cfg.Stacks = append(cfg.Stacks, core.ISCSI)
		case "":
		default:
			fatal("unknown stack " + s)
		}
	}
	if *workloads != "" {
		cfg.Workloads = strings.Split(*workloads, ",")
	}

	cells, err := core.RunTransport(cfg)
	if err != nil {
		fatal(err.Error())
	}
	core.RenderTransport(os.Stdout, cells)
	if err := sink.Err(); err == nil {
		err = closeSink()
	}
	if err != nil {
		fatal("metrics: " + err.Error())
	}
}

// floats parses a comma-separated list of non-negative numbers.
func floats(list, name string) []float64 {
	var out []float64
	for _, f := range strings.Split(list, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil || v < 0 {
			fatal("bad -" + name + " value " + f)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		fatal("-" + name + " needs at least one value")
	}
	return out
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "transport:", msg)
	os.Exit(1)
}
