// Command seqrand regenerates Table 4: completion times, message counts
// and bytes transferred for sequential and random reads and writes of a
// large file over NFS v3 and iSCSI.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/metrics"
)

func main() {
	sizeMB := flag.Int64("size", 128, "file size in MB (paper: 128)")
	metricsPath := flag.String("metrics", "", "write JSONL telemetry events to this file (see docs/METRICS.md)")
	prof := cliutil.ProfileFlags()
	flag.Parse()

	fatal := func(msg string) {
		fmt.Fprintln(os.Stderr, "seqrand:", msg)
		os.Exit(1)
	}
	if err := cliutil.Int(int(*sizeMB), "size", 1, 16384); err != nil {
		fatal(err.Error())
	}
	if err := prof.Start(); err != nil {
		fatal(err.Error())
	}
	sink, closeSink, err := metrics.OpenFileSink(*metricsPath)
	if err != nil {
		fatal(err.Error())
	}
	rows, err := core.RunTable4(core.Options{
		Metrics: metrics.NewRecorder(sink, metrics.Tags{"cmd": "seqrand"}),
	}, *sizeMB<<20)
	if err != nil {
		fatal(err.Error())
	}
	core.RenderTable4(os.Stdout, rows)
	if err := sink.Err(); err == nil {
		err = closeSink()
	}
	if err != nil {
		fatal("metrics: " + err.Error())
	}
	if err := prof.Stop(); err != nil {
		fatal(err.Error())
	}
}
