// Command seqrand regenerates Table 4: completion times, message counts
// and bytes transferred for sequential and random reads and writes of a
// large file over NFS v3 and iSCSI.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	sizeMB := flag.Int64("size", 128, "file size in MB (paper: 128)")
	flag.Parse()

	rows, err := core.RunTable4(core.Options{}, *sizeMB<<20)
	if err != nil {
		fmt.Fprintln(os.Stderr, "seqrand:", err)
		os.Exit(1)
	}
	core.RenderTable4(os.Stdout, rows)
}
