// Command seqrand regenerates Table 4: completion times, message counts
// and bytes transferred for sequential and random reads and writes of a
// large file over NFS v3 and iSCSI.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/metrics"
)

func main() {
	sizeMB := flag.Int64("size", 128, "file size in MB (paper: 128)")
	metricsPath := flag.String("metrics", "", "write JSONL telemetry events to this file (see docs/METRICS.md)")
	flag.Parse()

	sink, closeSink, err := metrics.OpenFileSink(*metricsPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "seqrand:", err)
		os.Exit(1)
	}
	rows, err := core.RunTable4(core.Options{
		Metrics: metrics.NewRecorder(sink, metrics.Tags{"cmd": "seqrand"}),
	}, *sizeMB<<20)
	if err != nil {
		fmt.Fprintln(os.Stderr, "seqrand:", err)
		os.Exit(1)
	}
	core.RenderTable4(os.Stdout, rows)
	if err := sink.Err(); err == nil {
		err = closeSink()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "seqrand: metrics:", err)
		os.Exit(1)
	}
}
