// Command ablate runs the ablation experiments that isolate the causes
// behind the paper's results (the design-choice knobs DESIGN.md calls
// out): journal commit interval (update aggregation window), sync vs.
// async export (durability pricing), the NFS client's async-write pool
// bound (pseudo-synchronous degeneration), and access-time maintenance.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/metrics"
)

func main() {
	metricsPath := flag.String("metrics", "", "write JSONL telemetry events to this file (see docs/METRICS.md)")
	prof := cliutil.ProfileFlags()
	flag.Parse()
	die := func(err error) {
		fmt.Fprintln(os.Stderr, "ablate:", err)
		os.Exit(1)
	}
	if err := prof.Start(); err != nil {
		die(err)
	}
	sink, closeSink, err := metrics.OpenFileSink(*metricsPath)
	if err != nil {
		die(err)
	}
	opts := core.Options{Metrics: metrics.NewRecorder(sink, metrics.Tags{"cmd": "ablate"})}

	fmt.Println("Ablation 1: journal commit interval (iSCSI meta-data burst)")
	res, err := core.AblateCommitInterval(opts, nil, 0)
	if err != nil {
		die(err)
	}
	for _, r := range res {
		fmt.Printf("  %-16s msgs=%-6d time=%v\n", r.Setting, r.Messages, r.Elapsed)
	}

	fmt.Println("Ablation 2: NFS export durability")
	async, sync, err := core.AblateSyncExport(opts, 0)
	if err != nil {
		die(err)
	}
	for _, r := range []core.AblationResult{async, sync} {
		fmt.Printf("  %-16s msgs=%-6d time=%v\n", r.Setting, r.Messages, r.Elapsed)
	}

	fmt.Println("Ablation 3: NFS async-write pool bound (sequential write)")
	res, err = core.AblateWritePool(opts, nil, 0)
	if err != nil {
		die(err)
	}
	for _, r := range res {
		fmt.Printf("  %-16s msgs=%-6d time=%v\n", r.Setting, r.Messages, r.Elapsed)
	}

	fmt.Println("Ablation 4: access-time maintenance (iSCSI warm reads)")
	withAtime, noAtime, err := core.AblateNoAtime(opts, 0)
	if err != nil {
		die(err)
	}
	for _, r := range []core.AblationResult{withAtime, noAtime} {
		fmt.Printf("  %-16s msgs=%-6d time=%v\n", r.Setting, r.Messages, r.Elapsed)
	}
	if err := sink.Err(); err == nil {
		err = closeSink()
	}
	if err != nil {
		die(fmt.Errorf("metrics: %w", err))
	}
	if err := prof.Stop(); err != nil {
		die(err)
	}
}
