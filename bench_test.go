// Package repro's benchmark harness: one testing.B benchmark per table and
// figure in the paper's evaluation. Each benchmark regenerates its
// experiment at a benchmark-friendly scale and reports the headline
// quantities as custom metrics (messages, virtual seconds, ratios), so
// `go test -bench=. -benchmem` reproduces the entire evaluation.
//
// The paper-faithful full-scale runs live in the cmd/ tools; see
// EXPERIMENTS.md for the side-by-side against the paper's numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/health"
	"repro/internal/metrics"
	"repro/internal/replay"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/trace"
	"repro/internal/tracing"
	"repro/internal/workload"
)

// benchJSON, when set, appends every headline metric to a JSONL telemetry
// stream in the unified event schema (docs/METRICS.md: subsys "bench",
// point events tagged {bench, metric}), so CI runs accumulate a
// machine-readable perf trajectory across PRs that cmd/metrics can
// validate and summarize alongside sweep telemetry:
//
//	go test -bench=. -benchjson=bench.jsonl .
//	go run ./cmd/metrics -by bench,metric bench.jsonl
var benchJSON = flag.String("benchjson", "", "append headline benchmark metrics as JSONL telemetry events to this file")

type benchRecord struct {
	bench  string
	metric string
	value  float64
	n      int
}

// benchRecords holds the latest value per (bench, metric). The testing
// framework re-invokes each benchmark while calibrating b.N, so records
// are buffered (last calibration round wins) and flushed once in TestMain
// — one JSON line per metric per `go test` run.
var benchRecords = map[string]benchRecord{}

// report records a headline metric as a testing.B custom metric and, when
// -benchjson is set, as a telemetry point event.
func report(b *testing.B, value float64, metric string) {
	b.ReportMetric(value, metric)
	benchRecords[b.Name()+"\x00"+metric] = benchRecord{b.Name(), metric, value, b.N}
}

func TestMain(m *testing.M) {
	code := m.Run()
	if err := flushBenchJSON(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

// flushBenchJSON appends the buffered records in sorted key order. Bench
// events are wall-clock measurements with no virtual timeline, so they
// carry t=0 (the documented convention for subsys "bench").
func flushBenchJSON() error {
	if *benchJSON == "" || len(benchRecords) == 0 {
		return nil
	}
	keys := make([]string, 0, len(benchRecords))
	for k := range benchRecords {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	f, err := os.OpenFile(*benchJSON, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	for _, k := range keys {
		r := benchRecords[k]
		e := metrics.Event{
			Subsys: metrics.SubsysBench,
			Kind:   metrics.KindPoint,
			Tags:   metrics.Tags{"bench": r.bench, "metric": r.metric},
			Values: map[string]float64{"value": r.value, "n": float64(r.n)},
		}
		if err := metrics.WriteEvent(f, e); err != nil {
			return err
		}
	}
	return nil
}

// benchOpts keeps per-iteration work modest.
func benchOpts() core.Options {
	return core.Options{DeviceBlocks: 131072}
}

// BenchmarkTable2ColdCacheSyscalls regenerates Table 2 for a
// representative subset of operations.
func BenchmarkTable2ColdCacheSyscalls(b *testing.B) {
	ops := []string{"mkdir", "chdir", "readdir", "creat", "stat"}
	var total int64
	for i := 0; i < b.N; i++ {
		for _, name := range ops {
			op, err := core.FindMicroOp(name)
			if err != nil {
				b.Fatal(err)
			}
			for _, stack := range testbed.AllKinds {
				n, err := core.MicroCount(benchOpts(), op, 0, stack, false)
				if err != nil {
					b.Fatal(err)
				}
				total += n
			}
		}
	}
	report(b, float64(total)/float64(b.N), "messages/iter")
}

// BenchmarkTable3WarmCacheSyscalls regenerates Table 3 for the same subset.
func BenchmarkTable3WarmCacheSyscalls(b *testing.B) {
	ops := []string{"mkdir", "chdir", "readdir", "creat", "stat"}
	var total int64
	for i := 0; i < b.N; i++ {
		for _, name := range ops {
			op, err := core.FindMicroOp(name)
			if err != nil {
				b.Fatal(err)
			}
			for _, stack := range testbed.AllKinds {
				n, err := core.MicroCount(benchOpts(), op, 0, stack, true)
				if err != nil {
					b.Fatal(err)
				}
				total += n
			}
		}
	}
	report(b, float64(total)/float64(b.N), "messages/iter")
}

// BenchmarkFigure3BatchingEffects regenerates the update-aggregation curve
// for mkdir and reports the amortized cost at the largest batch.
func BenchmarkFigure3BatchingEffects(b *testing.B) {
	var amortized float64
	for i := 0; i < b.N; i++ {
		series, err := core.RunFigure3(benchOpts(), []int{1, 64, 256})
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range series {
			if s.Op == "mkdir" {
				amortized = s.Points[len(s.Points)-1].PerOpMsgs
			}
		}
	}
	report(b, amortized, "msgs/op@256")
}

// BenchmarkFigure4DirectoryDepth regenerates the depth sweep at three
// depths and reports the iSCSI cold slope.
func BenchmarkFigure4DirectoryDepth(b *testing.B) {
	var slope float64
	for i := 0; i < b.N; i++ {
		op, _ := core.FindMicroOp("mkdir")
		d0, err := core.MicroCount(benchOpts(), op, 0, core.ISCSI, false)
		if err != nil {
			b.Fatal(err)
		}
		d8, err := core.MicroCount(benchOpts(), op, 8, core.ISCSI, false)
		if err != nil {
			b.Fatal(err)
		}
		slope = float64(d8-d0) / 8
	}
	report(b, slope, "msgs/level")
}

// BenchmarkFigure5ReadWriteSizes regenerates the size sweep at two sizes.
func BenchmarkFigure5ReadWriteSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.RunFigure5(benchOpts(), []int{4096, 65536}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4SequentialRandom regenerates Table 4 at 16 MB and reports
// the sequential-write message ratio (paper: ~29x).
func BenchmarkTable4SequentialRandom(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := core.RunTable4(benchOpts(), 16<<20)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Workload == "Sequential writes" && r.ISCSI.Messages > 0 {
				ratio = float64(r.NFS.Messages) / float64(r.ISCSI.Messages)
			}
		}
	}
	report(b, ratio, "nfs/iscsi-write-msgs")
}

// BenchmarkFigure6LatencySweep regenerates two points of the latency sweep
// at 8 MB and reports the NFS write slowdown from 10 ms to 50 ms RTT.
func BenchmarkFigure6LatencySweep(b *testing.B) {
	var slowdown float64
	for i := 0; i < b.N; i++ {
		pts, err := core.RunFigure6(benchOpts(), 8<<20,
			[]time.Duration{10 * time.Millisecond, 50 * time.Millisecond})
		if err != nil {
			b.Fatal(err)
		}
		lo := pts[0].Seconds[core.NFSv3]["seq-write"]
		hi := pts[1].Seconds[core.NFSv3]["seq-write"]
		if lo > 0 {
			slowdown = hi / lo
		}
	}
	report(b, slowdown, "nfs-write-slowdown-10to50ms")
}

// BenchmarkTable5PostMark regenerates Table 5 at 2% scale and reports the
// iSCSI speedup.
func BenchmarkTable5PostMark(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		rows, err := core.RunTable5(benchOpts(), core.MacroScale(0.02))
		if err != nil {
			b.Fatal(err)
		}
		r := rows[0]
		if r.ISCSI.Elapsed > 0 {
			speedup = float64(r.NFS.Elapsed) / float64(r.ISCSI.Elapsed)
		}
	}
	report(b, speedup, "iscsi-speedup")
}

// BenchmarkTable6TPCC regenerates Table 6 at 10% scale and reports the
// normalized throughput (paper: 1.08).
func BenchmarkTable6TPCC(b *testing.B) {
	var norm float64
	for i := 0; i < b.N; i++ {
		row, err := core.RunTable6(benchOpts(), core.MacroScale(0.1))
		if err != nil {
			b.Fatal(err)
		}
		norm = row.Normalized
	}
	report(b, norm, "normalized-tpmC")
}

// BenchmarkTable7TPCH regenerates Table 7 at 10% scale and reports the
// normalized throughput (paper: 1.07).
func BenchmarkTable7TPCH(b *testing.B) {
	var norm float64
	for i := 0; i < b.N; i++ {
		row, err := core.RunTable7(benchOpts(), core.MacroScale(0.1))
		if err != nil {
			b.Fatal(err)
		}
		norm = row.Normalized
	}
	report(b, norm, "normalized-QphH")
}

// BenchmarkTable8OtherBenchmarks regenerates Table 8 at 25% scale and
// reports the tar speedup (paper: 12x).
func BenchmarkTable8OtherBenchmarks(b *testing.B) {
	var tarSpeedup float64
	for i := 0; i < b.N; i++ {
		rows, err := core.RunTable8(benchOpts(), core.MacroScale(0.25))
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].ISCSI.Elapsed > 0 {
			tarSpeedup = float64(rows[0].NFS.Elapsed) / float64(rows[0].ISCSI.Elapsed)
		}
	}
	report(b, tarSpeedup, "tar-speedup")
}

// BenchmarkTable9ServerCPU regenerates the server CPU comparison on
// PostMark and reports the NFS:iSCSI utilization ratio (paper: ~6x).
func BenchmarkTable9ServerCPU(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		cfg := workload.PostMarkConfig{Files: 300, Transactions: 3000, MinSize: 500, MaxSize: 10000, Seed: 42}
		var nfsCPU, iscsiCPU float64
		for _, kind := range []testbed.Kind{testbed.NFSv3, testbed.ISCSI} {
			tb, err := testbed.New(testbed.Config{Kind: kind, DeviceBlocks: 131072})
			if err != nil {
				b.Fatal(err)
			}
			res, _, err := workload.PostMark(tb, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if kind == testbed.NFSv3 {
				nfsCPU = res.ServerCPU
			} else {
				iscsiCPU = res.ServerCPU
			}
		}
		if iscsiCPU > 0 {
			ratio = nfsCPU / iscsiCPU
		}
	}
	report(b, ratio, "server-cpu-ratio")
}

// BenchmarkTable10ClientCPU regenerates the client CPU comparison on
// PostMark and reports the iSCSI:NFS utilization ratio (paper: ~12x).
func BenchmarkTable10ClientCPU(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		cfg := workload.PostMarkConfig{Files: 300, Transactions: 3000, MinSize: 500, MaxSize: 10000, Seed: 42}
		var nfsCPU, iscsiCPU float64
		for _, kind := range []testbed.Kind{testbed.NFSv3, testbed.ISCSI} {
			tb, err := testbed.New(testbed.Config{Kind: kind, DeviceBlocks: 131072})
			if err != nil {
				b.Fatal(err)
			}
			res, _, err := workload.PostMark(tb, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if kind == testbed.NFSv3 {
				nfsCPU = res.ClientCPU
			} else {
				iscsiCPU = res.ClientCPU
			}
		}
		if nfsCPU > 0 {
			ratio = iscsiCPU / nfsCPU
		}
	}
	report(b, ratio, "client-cpu-ratio")
}

// BenchmarkTransport runs the virtual-time TCP transport sweep at a small
// scale and reports the two headline transport results: the iSCSI MC/S
// speedup from 1 to 4 connections on a 40 ms link (Kumar et al.), and the
// ratio of NFS-over-UDP to NFS-over-TCP degradation at 5% frame loss.
func BenchmarkTransport(b *testing.B) {
	var mcsSpeedup, udpPenalty float64
	for i := 0; i < b.N; i++ {
		cells, err := core.RunTransport(core.TransportConfig{
			Stacks:       []core.Stack{core.NFSv3, core.ISCSI},
			Workloads:    []string{"seq-read"},
			RTTs:         []time.Duration{40 * time.Millisecond},
			LossRates:    []float64{0, 0.05},
			Conns:        []int{1, 4},
			FileSize:     1 << 20,
			DeviceBlocks: 8192,
			Seed:         42,
		})
		if err != nil {
			b.Fatal(err)
		}
		pick := func(stack core.Stack, tr string, conns int, loss float64) core.TransportCell {
			for _, c := range cells {
				if c.Stack == stack && c.Transport.String() == tr && c.Conns == conns && c.Loss == loss {
					return c
				}
			}
			b.Fatalf("missing cell %v/%s x%d loss=%g", stack, tr, conns, loss)
			return core.TransportCell{}
		}
		one := pick(core.ISCSI, "tcp", 1, 0)
		four := pick(core.ISCSI, "tcp", 4, 0)
		if one.BytesPerSec > 0 {
			mcsSpeedup = four.BytesPerSec / one.BytesPerSec
		}
		udp := pick(core.NFSv3, "udp", 1, 0.05)
		tcp := pick(core.NFSv3, "tcp", 1, 0.05)
		if tcp.Elapsed > 0 {
			udpPenalty = float64(udp.Elapsed) / float64(tcp.Elapsed)
		}
	}
	report(b, mcsSpeedup, "iscsi-mcs-speedup-4c")
	report(b, udpPenalty, "nfs-udp/tcp-elapsed@5%loss")
}

// BenchmarkReplay replays a slice of the EECS-like trace through the full
// protocol stacks over virtual-time TCP and reports the NFS v3 p99 per-op
// latency and throughput alongside the iSCSI p99 (the replayed version of
// the paper's meta-data latency gap, for the perf trajectory).
func BenchmarkReplay(b *testing.B) {
	var p99us, opsPerSec, iscsiP99us float64
	for i := 0; i < b.N; i++ {
		cells, err := core.RunReplay(core.ReplayConfig{
			Profiles:     []string{"eecs"},
			Stacks:       []core.Stack{core.NFSv3, core.ISCSI},
			Transports:   []testbed.Transport{testbed.TransportTCP},
			Clients:      2,
			MaxOps:       400,
			DirMod:       32,
			DeviceBlocks: 8192,
			Seed:         42,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			switch c.Stack {
			case core.NFSv3:
				p99us = float64(c.P99.Microseconds())
				opsPerSec = c.OpsPerSec
			case core.ISCSI:
				iscsiP99us = float64(c.P99.Microseconds())
			}
		}
	}
	report(b, p99us, "nfsv3-replay-p99-us")
	report(b, opsPerSec, "nfsv3-replay-ops/s")
	report(b, iscsiP99us, "iscsi-replay-p99-us")
}

// BenchmarkFigure7TraceSharing regenerates the sharing analysis.
func BenchmarkFigure7TraceSharing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, p := range []trace.Profile{trace.EECS(), trace.Campus()} {
			recs := trace.Synthesize(p)
			trace.AnalyzeSharing(recs, []time.Duration{16 * time.Second, 256 * time.Second})
		}
	}
}

// BenchmarkSection7Enhancements regenerates the meta-data cache and
// delegation simulations and reports the EECS delegation reduction.
func BenchmarkSection7Enhancements(b *testing.B) {
	var reduction float64
	for i := 0; i < b.N; i++ {
		recs := trace.Synthesize(trace.EECS())
		trace.SimulateMetadataCache(recs, 1024)
		res := trace.SimulateDelegation(recs)
		reduction = res.MessageReduction
	}
	report(b, reduction*100, "delegation-reduction-%")
}

// BenchmarkScaling runs the multi-client cluster sweep at a small scale
// and reports aggregate iSCSI and NFS v3 sequential-write throughput at 4
// clients (the headline scaling metric for the perf trajectory).
func BenchmarkScaling(b *testing.B) {
	var iscsiMBps, nfsMBps float64
	for i := 0; i < b.N; i++ {
		cells, err := core.RunScaling(core.ScaleConfig{
			Counts:       []int{4},
			Workloads:    []string{"seq-write"},
			Stacks:       []core.Stack{core.NFSv3, core.ISCSI},
			FileSize:     1 << 20,
			DeviceBlocks: 8192,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			if c.Clients != 4 {
				continue
			}
			switch c.Stack {
			case core.ISCSI:
				iscsiMBps = c.AggBytesPerSec / 1e6
			case core.NFSv3:
				nfsMBps = c.AggBytesPerSec / 1e6
			}
		}
	}
	report(b, iscsiMBps, "iscsi-agg-MBps@4c")
	report(b, nfsMBps, "nfsv3-agg-MBps@4c")
}

// BenchmarkTracing measures the tracing subsystem on one NFS v3 seq-read
// cell, disabled (nil tracer — the zero-cost path every layer calls
// unconditionally; allocation-freedom is test-enforced in
// internal/tracing) against enabled (full span capture), and reports the
// enabled overhead percentage plus spans captured per cell for the perf
// trajectory.
func BenchmarkTracing(b *testing.B) {
	cell := func(tr *tracing.Tracer) time.Duration {
		tb, err := testbed.New(testbed.Config{
			Kind: testbed.NFSv3, DeviceBlocks: 8192, Seed: 42, Tracer: tr,
		})
		if err != nil {
			b.Fatal(err)
		}
		src := workload.SeqRandConfig{FileSize: 1 << 20, ChunkSize: 4096, Seed: 42}
		start := time.Now()
		if _, err := workload.SequentialRead(tb, src); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	var disabled, enabled time.Duration
	var spans float64
	for i := 0; i < b.N; i++ {
		disabled += cell(nil)
		tr := tracing.New(tracing.Config{})
		enabled += cell(tr)
		spans = float64(len(tr.Spans()))
	}
	var overhead float64
	if disabled > 0 {
		overhead = 100 * (float64(enabled)/float64(disabled) - 1)
	}
	report(b, overhead, "enabled-overhead-%")
	report(b, spans, "spans/cell")
}

// BenchmarkSchedulerStep measures the indexed-heap scheduler's
// steady-state per-step cost with 10,000 live procs (each step re-keys
// the heap — the fleet-scale hot path) and reports it for the perf
// trajectory. The O(log N) growth proof across fleet sizes lives in
// internal/sim's BenchmarkScheduler.
func BenchmarkSchedulerStep(b *testing.B) {
	s := sim.NewScheduler()
	for i := 0; i < 10000; i++ {
		c := sim.NewClock()
		d := time.Duration(i%97+1) * time.Microsecond
		s.Spawn(c, func() (bool, error) {
			c.Advance(d)
			return true, nil
		})
	}
	b.ReportAllocs()
	start := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
	report(b, float64(time.Since(start).Nanoseconds())/float64(b.N), "ns/step@10kprocs")
}

// BenchmarkFleetScaling runs one hybrid 10,000-client cell (8
// mechanistic foreground clients, the rest calibrated fluid background)
// and reports the fleet's aggregate throughput and the cell's wall-clock
// cost — the headline for the fleet-scale engine.
func BenchmarkFleetScaling(b *testing.B) {
	var aggMBps, wallMs float64
	for i := 0; i < b.N; i++ {
		start := time.Now()
		cells, err := core.RunScaling(core.ScaleConfig{
			Counts:     []int{10000},
			Workloads:  []string{"seq-write"},
			Stacks:     []core.Stack{core.ISCSI},
			FileSize:   256 << 10,
			Foreground: 8,
			Seed:       5,
		})
		if err != nil {
			b.Fatal(err)
		}
		wallMs = float64(time.Since(start).Milliseconds())
		aggMBps = cells[0].AggBytesPerSec / 1e6
	}
	report(b, aggMBps, "iscsi-agg-MBps@10kc")
	report(b, wallMs, "wall-ms@10kc")
}

// BenchmarkFault runs one server-crash recovery cell per stack on the
// fluid wire and reports the client-visible time-to-recover — the
// headline of the failure-and-recovery axis — plus the degraded-window
// throughput that separates the two caching stories.
func BenchmarkFault(b *testing.B) {
	var nfsTTR, iscsiTTR, nfsDegr, iscsiDegr float64
	for i := 0; i < b.N; i++ {
		cells, err := core.RunFault(core.FaultConfig{
			Families:   []fault.Family{fault.ServerCrash},
			Stacks:     []core.Stack{core.NFSv3, core.ISCSI},
			Transports: []testbed.Transport{testbed.TransportFluid},
			Seed:       7,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			if c.Collapsed {
				b.Fatalf("%s/%s collapsed", c.Family, c.Label())
			}
			switch c.Stack {
			case core.NFSv3:
				nfsTTR, nfsDegr = float64(c.TTR.Milliseconds()), c.DegradedRate
			case core.ISCSI:
				iscsiTTR, iscsiDegr = float64(c.TTR.Milliseconds()), c.DegradedRate
			}
		}
	}
	report(b, nfsTTR, "nfs-crash-ttr-ms")
	report(b, iscsiTTR, "iscsi-crash-ttr-ms")
	report(b, nfsDegr, "nfs-degraded-ops/s")
	report(b, iscsiDegr, "iscsi-degraded-ops/s")
}

// BenchmarkHealth measures the health monitor's scrape cost on one
// NFS v3 server-crash recovery cell — the identical fault sweep with
// the monitor detached (nil = the inert path every cluster carries
// unconditionally) against attached with the default SLO set — and
// reports the attached overhead percentage plus the monitored cell's
// crash detection latency and gauge volume for the perf trajectory.
func BenchmarkHealth(b *testing.B) {
	faultCell := func(h *health.Config) time.Duration {
		start := time.Now()
		if _, err := core.RunFault(core.FaultConfig{
			Families:   []fault.Family{fault.ServerCrash},
			Stacks:     []core.Stack{core.NFSv3},
			Transports: []testbed.Transport{testbed.TransportFluid},
			Seed:       7,
			Health:     h,
		}); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	var detached, attached time.Duration
	var ttdMs, gauges float64
	for i := 0; i < b.N; i++ {
		detached += faultCell(nil)
		attached += faultCell(&health.Config{})
		cells, err := core.RunHealth(core.HealthConfig{
			Families:   []fault.Family{fault.ServerCrash},
			Stacks:     []core.Stack{core.NFSv3},
			Transports: []testbed.Transport{testbed.TransportFluid},
			Seed:       5,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			if !c.Control {
				ttdMs = float64(c.TTD.Milliseconds())
				gauges = float64(c.GaugeEvents)
			}
		}
	}
	var overhead float64
	if detached > 0 {
		overhead = 100 * (float64(attached)/float64(detached) - 1)
	}
	report(b, overhead, "attached-overhead-%")
	report(b, ttdMs, "crash-ttd-ms")
	report(b, gauges, "gauge-events/cell")
}

// BenchmarkContention runs the lock ping-pong cell on both sharing
// models — NFS byte-range locks vs iSCSI persistent reservations — over
// the fluid wire and reports locked-op throughput and the mean denied
// polls per op (the cross-client sharing headline for the perf
// trajectory), plus the full-stack delegation message reduction from a
// short EECS replay on a delegating NFSv4 cluster (oracle-validated in
// internal/replay).
func BenchmarkContention(b *testing.B) {
	var nfsRate, iscsiRate, nfsPollsPerOp, reduction float64
	for i := 0; i < b.N; i++ {
		cells, err := core.RunContention(core.ContendConfig{
			Workloads:  []string{core.ContendPingPong},
			Stacks:     []core.Stack{core.NFSv3, core.ISCSI},
			Transports: []testbed.Transport{testbed.TransportFluid},
			Clients:    4,
			Iters:      25,
			Seed:       7,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			switch c.Stack {
			case core.NFSv3:
				nfsRate = c.Rate
				nfsPollsPerOp = float64(c.Denials) / float64(c.Ops)
			case core.ISCSI:
				iscsiRate = c.Rate
			}
		}
		cl, err := testbed.NewCluster(testbed.ClusterConfig{
			Kind:         testbed.NFSv4,
			Clients:      4,
			DeviceBlocks: 8192,
			Seed:         11,
			Sharing:      &testbed.SharingConfig{Delegation: true},
		})
		if err != nil {
			b.Fatal(err)
		}
		recs := trace.Synthesize(trace.EECS())
		res, err := replay.Run(cl, recs, replay.Options{DirMod: 32, MaxOps: 400})
		if err != nil {
			b.Fatal(err)
		}
		reduction = 100 * (1 - float64(res.Messages)/float64(len(res.Ops)))
	}
	report(b, nfsRate, "nfs-pingpong-ops/s")
	report(b, iscsiRate, "iscsi-pingpong-ops/s")
	report(b, nfsPollsPerOp, "nfs-denied-polls/op")
	report(b, reduction, "delegation-reduction-fullstack-%")
}
